"""Command-line entry point: ``ios-bench <experiment> [options]``.

Runs any of the paper-reproduction experiments and prints its table; optionally
writes CSV.  The ``serve`` subcommand instead runs the batch-aware inference
service of :mod:`repro.serve` under synthetic traffic.

Every IOS search — figure runs and serving alike — goes through
:class:`repro.engine.Engine`: the experiments fetch one pooled engine per
(device, variant) from :func:`repro.engine.get_engine`, so ``ios-bench all``
compiles each (model, batch, device) combination exactly once and later
figures reuse the cache.  Examples::

    ios-bench figure6 --device v100
    ios-bench table3-batch --model inception_v3
    ios-bench all --quick --csv-dir results/
    ios-bench serve --model inception_v3 --pattern poisson --requests 500
    ios-bench serve --compare --registry-dir schedules/ --csv-dir results/
    ios-bench serve --fleet k80:2,v100:4 --router earliest-finish
    ios-bench serve --fleet k80:2,v100:4 --compare   # fleet-comparison table
    ios-bench serve --slo 20 --admission deadline --autoscale 1:3
    ios-bench serve --slo 20 --compare               # admission-policy table
    ios-bench serve --trace trace.json --metrics metrics.json
    ios-bench serve --slo 20 --watch --alerts        # live dashboard + alerting
    ios-bench serve --trace t.json --trace-sample budget=20000,head=50
    ios-bench trace trace.json                       # validate + summarise
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Callable

from .ablation_passes import run_pass_ablation
from .ablations import run_blockwise_ablation, run_cost_model_ablation
from .fig01_trends import run_figure1
from .fig02_motivating import run_figure2
from .fig06_schedules import run_figure6, run_figure14
from .fig07_frameworks import run_figure7, run_figure15
from .fig08_active_warps import run_figure8
from .fig09_pruning import run_figure9
from .fig10_case_study import run_figure10
from .fig11_batch_sizes import run_figure11
from .fig12_intra_vs_inter import run_figure12
from .fig13_worst_case import run_figure13
from .fig16_blockwise import run_figure16
from .resnet_note import run_resnet_note
from .tab01_complexity import run_table1
from .tab02_networks import run_table2
from .tab03_specialization import run_table3_batch, run_table3_device
from .tables import ExperimentTable

__all__ = ["main", "serve_main", "trace_main", "EXPERIMENTS", "QUICK_MODELS"]

#: Model subset used with ``--quick`` (fast enough for CI smoke runs).
QUICK_MODELS = ["inception_v3", "squeezenet"]


def _variant_arg(value: str) -> str:
    """argparse type for IOS variants: normalises drifted spellings.

    Accepts ``ios-both`` / ``both`` / ``IOS_Both`` etc. and turns an unknown
    name into a clean argparse error listing the valid variants.
    """
    from ..core import UnknownVariantError, normalize_variant

    try:
        return normalize_variant(value)
    except UnknownVariantError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _experiments(quick: bool, device: str) -> dict[str, Callable[[], ExperimentTable]]:
    models = QUICK_MODELS if quick else None
    return {
        "figure1": lambda: run_figure1(),
        "figure2": lambda: run_figure2(device=device),
        "table1": lambda: run_table1(models=models),
        "table2": lambda: run_table2(models=models),
        "figure6": lambda: run_figure6(device=device, models=models),
        "figure7": lambda: run_figure7(device=device, models=models),
        "figure8": lambda: run_figure8(device=device),
        "figure9": lambda: run_figure9(models=("inception_v3",) if quick else ("inception_v3", "nasnet_a"), device=device),
        "table3-batch": lambda: run_table3_batch(device=device, batch_sizes=(1, 32) if quick else (1, 32, 128)),
        "table3-device": lambda: run_table3_device(),
        "figure10": lambda: run_figure10(device=device),
        "figure11": lambda: run_figure11(device=device, batch_sizes=(1, 16, 32) if quick else (1, 16, 32, 64, 128)),
        "figure12": lambda: run_figure12(device=device, models=models),
        "figure13": lambda: run_figure13(),
        "figure14": lambda: run_figure14(models=models),
        "figure15": lambda: run_figure15(models=models),
        "figure16": lambda: run_figure16(device=device),
        "resnet-note": lambda: run_resnet_note(device=device),
        "ablation-cost-model": lambda: run_cost_model_ablation(device=device),
        "ablation-blockwise": lambda: run_blockwise_ablation(device=device),
        "ablation-passes": lambda: run_pass_ablation(
            device=device,
            models=("inception_v3", "squeezenet") if quick else ("inception_v3", "nasnet_a"),
        ),
    }


#: Stable list of experiment names shown in ``--help`` and accepted by ``run``.
EXPERIMENTS = sorted(_experiments(quick=True, device="v100"))


def _write_csv(table: ExperimentTable, csv_dir: str | None) -> None:
    """Export ``table`` to ``<csv_dir>/<experiment_id>.csv`` when requested."""
    if csv_dir is None:
        return
    path = Path(csv_dir) / f"{table.experiment_id}.csv"
    table.to_csv(path)
    print(f"wrote {path}", file=sys.stderr)


def _validate_topology_flags(args, parser) -> None:
    """Reject per-worker pool flags when a higher-level topology owns the pool.

    Three pool declarations share this check so their conflict rules cannot
    drift: ``--device``/``--num-workers`` spell out one homogeneous pool,
    ``--fleet`` declares the whole pool as device groups, and ``--cluster``
    replicates a pool per host (``--fleet`` then declares *each host's*
    workers).  The higher-level flag always owns the pool, so the low-level
    spellings are rejected rather than silently ignored.
    """
    per_worker = args.device is not None or args.num_workers is not None
    if args.fleet is not None and per_worker:
        parser.error("--fleet declares the whole pool; "
                     "drop --device/--num-workers")
    if getattr(args, "cluster", None) is not None and per_worker:
        parser.error("--cluster declares one pool per host (use --fleet for "
                     "each host's workers); drop --device/--num-workers")


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``ios-bench serve`` subcommand."""
    # Imported lazily: repro.serve pulls in the whole serving stack, which the
    # figure/table experiments never need.
    from ..cluster import LinkModel, list_cluster_routers
    from ..serve import (
        AutoscaleConfig,
        BatchPolicy,
        FleetSpec,
        ServingConfig,
        TrafficConfig,
        list_admission_policies,
        list_routers,
        run_fleet_comparison,
        run_serving,
        run_serving_comparison,
        run_slo_comparison,
    )

    parser = argparse.ArgumentParser(
        prog="ios-bench serve",
        description="Serve synthetic traffic with batch-size-specialised IOS schedules "
        "on a pool of simulated devices (optionally a mixed-device fleet).",
    )
    parser.add_argument("--model", default="inception_v3",
                        help="model to serve: a zoo name or a model-file path "
                             "(anything repro.frontend.load accepts)")
    parser.add_argument("--device", default=None,
                        help="device preset for a homogeneous pool (default: v100; "
                        "conflicts with --fleet)")
    parser.add_argument("--num-workers", type=int, default=None,
                        help="number of simulated devices in the pool (default: 2; "
                        "conflicts with --fleet)")
    parser.add_argument("--fleet", default=None, metavar="DEV:N[,DEV:N...]",
                        help="mixed-device worker groups, e.g. 'k80:2,v100:4'; "
                        "with --compare, runs the mixed-vs-homogeneous fleet table")
    parser.add_argument("--router", default="earliest-finish", choices=list_routers(),
                        help="routing policy dispatching batches to workers "
                        "(default: earliest-finish, the device-aware policy)")
    parser.add_argument("--cluster", type=int, default=None, metavar="N",
                        help="replay the trace across N simulated hosts, each "
                        "running the --fleet pool (default v100:2 per host); "
                        "--cluster 1 reproduces the single-host loop exactly")
    parser.add_argument("--partition", action="store_true",
                        help="cut the model into one pipeline stage per host "
                        "(requires --cluster > 1); stage handoffs pay modeled "
                        "--link transfer costs")
    parser.add_argument("--cluster-router", default="earliest-finish-host",
                        choices=list_cluster_routers(),
                        help="cluster-level policy placing arrivals on hosts "
                        "(default: earliest-finish-host)")
    parser.add_argument("--link", default=None, metavar="SPEC",
                        help="inter-host link model, e.g. "
                        "'bw=12.5,lat=0.05,ingress=1.0' (GB/s and ms; ingress "
                        "serialises each host's client-facing NIC)")
    parser.add_argument("--host-memory", default=None, metavar="GB[,GB...]",
                        help="per-host weight-memory bound in GB: one value "
                        "for every host, or one comma-separated value per host")
    parser.add_argument("--pattern", choices=["poisson", "bursty", "uniform"],
                        default=None,
                        help="synthetic arrival pattern (default: poisson; "
                        "--compare runs poisson and bursty unless one is given)")
    parser.add_argument("--requests", type=int, default=200,
                        help="number of requests to generate")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="arrival rate in requests/second (poisson/uniform)")
    parser.add_argument("--burst-size", type=int, default=16,
                        help="requests per burst (bursty pattern)")
    parser.add_argument("--burst-gap-ms", type=float, default=50.0,
                        help="gap between bursts in ms (bursty pattern)")
    parser.add_argument("--batch-sizes", default="1,2,4,8,16",
                        help="comma-separated ladder of specialised batch sizes")
    parser.add_argument("--max-wait-ms", type=float, default=None,
                        help="dynamic batcher wait bound in ms (default: 5.0; "
                        "meaningless with --no-batching)")
    parser.add_argument("--variant", default="ios-both", type=_variant_arg,
                        metavar="{ios-both,ios-parallel,ios-merge}",
                        help="IOS variant compiled on registry misses "
                        "(drifted spellings like 'both' or 'IOS_Merge' are "
                        "normalised)")
    parser.add_argument("--registry-dir", default=None,
                        help="directory persisting optimised schedules across runs")
    parser.add_argument("--compile-jobs", type=int, default=None, metavar="N",
                        help="worker processes for cold compile searches "
                        "(default: the REPRO_COMPILE_JOBS environment "
                        "variable, else serial; 0 uses every CPU; schedules "
                        "are identical either way)")
    parser.add_argument("--passes", action=argparse.BooleanOptionalAction, default=False,
                        help="run the repro.passes rewrite pipeline on served graphs "
                        "(schedule keys fingerprint the rewritten graph)")
    parser.add_argument("--slo", type=float, default=None, metavar="MS",
                        help="latency budget attached to every generated request "
                        "(enables SLO accounting; with --compare, runs the "
                        "admission-policy comparison table)")
    parser.add_argument("--admission", default="admit-all",
                        choices=list_admission_policies(),
                        help="admission policy gating arrivals "
                        "(default: admit-all, the no-shedding baseline)")
    parser.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                        help="elastic worker-pool bounds, e.g. '1:4'; the pool "
                        "starts at its declared size and scales within the bounds")
    parser.add_argument("--seed", type=int, default=0, help="traffic seed")
    parser.add_argument("--no-batching", action="store_true",
                        help="serve every request by itself (baseline)")
    parser.add_argument("--compare", action="store_true",
                        help="print the dynamic-vs-unbatched comparison table instead")
    parser.add_argument("--csv-dir", default=None,
                        help="directory to write the comparison CSV to (with --compare)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record the run and write a Chrome-trace/Perfetto JSON "
                        "(compile stages, request lifecycles, per-worker kernel "
                        "activity); the report itself is unchanged")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="write the run's metrics-registry snapshot as JSON "
                        "(counters, gauges, histogram quantiles)")
    parser.add_argument("--watch", action="store_true",
                        help="print one live dashboard line per metrics window "
                        "to stderr (rps, p99, SLO attainment, queue depth, "
                        "firing alerts)")
    parser.add_argument("--window-ms", type=float, default=50.0, metavar="MS",
                        help="live-metrics window width in virtual ms "
                        "(default: 50; used by --watch/--alerts)")
    parser.add_argument("--alerts", nargs="?", const="default", default=None,
                        metavar="SPEC",
                        help="evaluate alert rules on every closed metrics "
                        "window, e.g. 'burn-rate=0.95,queue=32,p99=25'; bare "
                        "--alerts uses the default rule set (transitions land "
                        "in the report and the trace)")
    parser.add_argument("--trace-sample", nargs="?", const="default",
                        default=None, metavar="SPEC",
                        help="sample the recorded trace under a span budget, "
                        "e.g. 'budget=20000,head=50,track=4000'; bare "
                        "--trace-sample uses defaults; SLO-missed and "
                        "rejected requests are always kept (requires --trace)")
    args = parser.parse_args(argv)

    if args.requests <= 0:
        parser.error(f"--requests must be positive, got {args.requests}")
    if args.compile_jobs is not None:
        if args.compile_jobs < 0:
            parser.error(f"--compile-jobs must be >= 0, got {args.compile_jobs}")
        # Engines read REPRO_COMPILE_JOBS at each compile, so the flag reaches
        # every engine the serving stack builds — pooled or per-device.
        os.environ["REPRO_COMPILE_JOBS"] = str(args.compile_jobs)
    if args.num_workers is not None and args.num_workers <= 0:
        parser.error(f"--num-workers must be positive, got {args.num_workers}")
    _validate_topology_flags(args, parser)
    fleet = None
    if args.fleet is not None:
        try:
            fleet = FleetSpec.parse(args.fleet)
        except (KeyError, ValueError) as error:
            # str(KeyError) is the repr of its argument; unwrap for a clean
            # message.
            message = error.args[0] if isinstance(error, KeyError) else error
            parser.error(f"bad --fleet spec: {message}")
    device = args.device or "v100"
    num_workers = args.num_workers or 2
    if args.cluster is not None and args.cluster < 1:
        parser.error(f"--cluster needs at least one host, got {args.cluster}")
    if args.partition and (args.cluster is None or args.cluster < 2):
        parser.error("--partition cuts the model across hosts; "
                     "add --cluster N with N > 1")
    if args.cluster is None and (
        args.link is not None or args.host_memory is not None
    ):
        parser.error("--link/--host-memory configure a cluster run; "
                     "add --cluster N")
    if args.cluster is not None and args.compare:
        parser.error("--cluster replays a single run; drop --compare")
    link = LinkModel()
    if args.link is not None:
        try:
            link = LinkModel.parse(args.link)
        except ValueError as error:
            parser.error(f"bad --link spec: {error}")
    host_memory = None
    if args.host_memory is not None:
        try:
            memory_values = tuple(
                float(part) for part in args.host_memory.split(",") if part.strip()
            )
        except ValueError:
            parser.error(f"--host-memory must be comma-separated numbers in GB, "
                         f"got {args.host_memory!r}")
        if not memory_values or any(value <= 0 for value in memory_values):
            parser.error(f"--host-memory needs positive sizes in GB, "
                         f"got {args.host_memory!r}")
        if len(memory_values) > 1 and len(memory_values) != args.cluster:
            parser.error(f"--host-memory lists {len(memory_values)} bounds for "
                         f"--cluster {args.cluster} hosts")
        host_memory = (
            memory_values[0] if len(memory_values) == 1 else memory_values
        )
    if args.watch and args.cluster is not None and args.cluster > 1:
        print("note: --watch follows a single host's live windows; "
              "ignoring it for a multi-host cluster", file=sys.stderr)
    if args.rate <= 0:
        parser.error(f"--rate must be positive, got {args.rate}")
    if args.burst_size <= 0:
        parser.error(f"--burst-size must be positive, got {args.burst_size}")
    if args.burst_gap_ms <= 0:
        parser.error(f"--burst-gap-ms must be positive, got {args.burst_gap_ms}")
    if args.max_wait_ms is not None and args.max_wait_ms < 0:
        parser.error(f"--max-wait-ms must be non-negative, got {args.max_wait_ms}")
    if args.max_wait_ms is not None and args.no_batching:
        print("note: --no-batching serves every request immediately; "
              "ignoring --max-wait-ms", file=sys.stderr)
    max_wait_ms = 5.0 if args.max_wait_ms is None else args.max_wait_ms
    if args.slo is not None and args.slo < 0:
        parser.error(f"--slo must be non-negative, got {args.slo}")
    autoscale = None
    if args.autoscale is not None:
        try:
            autoscale = AutoscaleConfig.parse(args.autoscale)
        except ValueError as error:
            parser.error(f"bad --autoscale spec: {error}")
        pool_size = fleet.num_workers if fleet is not None else num_workers
        if not autoscale.min_workers <= pool_size <= autoscale.max_workers:
            parser.error(
                f"the pool starts at {pool_size} workers, outside the "
                f"--autoscale bounds {args.autoscale}"
            )
    try:
        batch_sizes = tuple(int(part) for part in args.batch_sizes.split(",") if part.strip())
    except ValueError:
        parser.error(f"--batch-sizes must be comma-separated integers, got {args.batch_sizes!r}")
    if not batch_sizes or any(size <= 0 for size in batch_sizes):
        parser.error(f"--batch-sizes needs at least one positive size, got {args.batch_sizes!r}")
    if len(set(batch_sizes)) != len(batch_sizes):
        parser.error(f"--batch-sizes must not repeat a size, got {args.batch_sizes!r}")
    if args.window_ms <= 0:
        parser.error(f"--window-ms must be positive, got {args.window_ms}")
    if args.trace_sample is not None and args.trace is None:
        parser.error("--trace-sample configures the trace recorder; "
                     "add --trace FILE")
    if args.csv_dir is not None and not args.compare:
        print("note: --csv-dir only writes the --compare table; ignoring it",
              file=sys.stderr)
    if args.compare and (args.trace is not None or args.metrics is not None):
        print("note: --trace/--metrics record a single run; ignoring them "
              "with --compare", file=sys.stderr)
    if args.compare and (args.alerts is not None or args.watch):
        print("note: --alerts/--watch observe a single run; ignoring them "
              "with --compare", file=sys.stderr)
    if args.compare:
        if args.no_batching:
            parser.error("--no-batching conflicts with --compare "
                         "(the comparison already includes the unbatched baseline)")
        if args.slo is None and (args.admission != "admit-all" or autoscale is not None):
            print("note: the dynamic-vs-unbatched and fleet comparisons run "
                  "admit-all on fixed pools; ignoring --admission/--autoscale "
                  "(add --slo for the admission-policy comparison)",
                  file=sys.stderr)
        if args.slo is not None:
            # Admission-policy comparison: the same deadline-carrying workload
            # through every policy, admit-all as the baseline.
            if fleet is not None:
                parser.error("--slo --compare runs on a homogeneous pool; "
                             "drop --fleet")
            admissions = (
                ("admit-all", args.admission)
                if args.admission != "admit-all" else ("admit-all", "deadline")
            )
            table = run_slo_comparison(
                model=args.model, device=device, num_workers=num_workers,
                slo_ms=args.slo, admissions=admissions, autoscale=autoscale,
                router=args.router,
                num_requests=args.requests, rate_rps=args.rate,
                batch_sizes=batch_sizes, max_wait_ms=max_wait_ms,
                pattern=args.pattern or "bursty",
                burst_size=args.burst_size, burst_gap_ms=args.burst_gap_ms,
                variant=args.variant, registry_root=args.registry_dir,
                seed=args.seed, passes=args.passes,
            )
            print(table.to_text())
            _write_csv(table, args.csv_dir)
            return 0
        if fleet is not None:
            # Fleet comparison: the mixed fleet vs equally-sized homogeneous
            # fleets of each member device type.
            table = run_fleet_comparison(
                model=args.model, fleet=fleet, routers=(args.router,),
                num_requests=args.requests, rate_rps=args.rate,
                batch_sizes=batch_sizes, max_wait_ms=max_wait_ms,
                patterns=(args.pattern,) if args.pattern else ("poisson", "bursty"),
                burst_size=args.burst_size, burst_gap_ms=args.burst_gap_ms,
                variant=args.variant, registry_root=args.registry_dir,
                seed=args.seed, passes=args.passes,
            )
        else:
            table = run_serving_comparison(
                model=args.model, device=device, num_workers=num_workers,
                num_requests=args.requests, rate_rps=args.rate, batch_sizes=batch_sizes,
                max_wait_ms=max_wait_ms,
                patterns=(args.pattern,) if args.pattern else ("poisson", "bursty"),
                burst_size=args.burst_size, burst_gap_ms=args.burst_gap_ms,
                variant=args.variant, registry_root=args.registry_dir,
                seed=args.seed, passes=args.passes,
            )
        print(table.to_text())
        _write_csv(table, args.csv_dir)
        return 0

    traffic = TrafficConfig(
        model=args.model, pattern=args.pattern or "poisson",
        num_requests=args.requests, rate_rps=args.rate,
        burst_size=args.burst_size, burst_gap_ms=args.burst_gap_ms,
        slo_ms=args.slo, seed=args.seed,
    )
    try:
        capped = traffic.capped_to(max(batch_sizes))
    except ValueError:
        parser.error(
            f"--batch-sizes maximum {max(batch_sizes)} cannot hold any request "
            f"of the traffic sample mix {traffic.sample_sizes}"
        )
    if capped is not traffic:
        print(
            f"note: sample mix capped to the ladder maximum {max(batch_sizes)} "
            f"(sizes {capped.sample_sizes} of {traffic.sample_sizes})",
            file=sys.stderr,
        )
        traffic = capped
    pool = dict(fleet=fleet) if fleet is not None else dict(
        devices=(device,) * num_workers
    )
    if args.no_batching:
        serving = ServingConfig.unbatched(
            model=args.model, batch_sizes=batch_sizes, variant=args.variant,
            registry_root=args.registry_dir, passes=args.passes,
            router=args.router, admission=args.admission, autoscale=autoscale,
            **pool,
        )
    else:
        serving = ServingConfig(
            model=args.model, batch_sizes=batch_sizes,
            policy=BatchPolicy(max_batch_size=max(batch_sizes),
                               max_wait_ms=max_wait_ms),
            variant=args.variant, registry_root=args.registry_dir,
            passes=args.passes, router=args.router, admission=args.admission,
            autoscale=autoscale, **pool,
        )
    alerts = None
    if args.alerts is not None:
        from ..obs import parse_alert_rules

        try:
            alerts = parse_alert_rules(args.alerts, slo_ms=args.slo)
        except ValueError as error:
            parser.error(f"bad --alerts spec: {error}")
    tracer = None
    if args.trace is not None:
        if args.trace_sample is not None:
            from ..obs import SamplingTracer, parse_sampling_spec

            try:
                tracer = SamplingTracer(parse_sampling_spec(args.trace_sample))
            except ValueError as error:
                parser.error(f"bad --trace-sample spec: {error}")
        else:
            from ..obs import Tracer

            tracer = Tracer()
    if args.cluster is not None:
        from ..cluster import ClusterConfig, run_cluster_serving

        cluster_config = ClusterConfig(
            serving=serving, num_hosts=args.cluster,
            host_memory_gb=host_memory, partition=args.partition,
            router=args.cluster_router, link=link,
        )
        try:
            cluster_report = run_cluster_serving(
                traffic, cluster_config, tracer=tracer,
                alerts=alerts, watch=True if args.watch else None,
                window_ms=args.window_ms,
            )
        except ValueError as error:
            parser.error(str(error))
        print(cluster_report.describe())
        report = cluster_report.report
        metrics_registry = (
            report.metrics if report.metrics is not None
            else cluster_report.cluster_metrics
        )
    else:
        report = run_serving(
            traffic, serving, tracer=tracer,
            alerts=alerts, watch=True if args.watch else None,
            window_ms=args.window_ms,
        )
        print(report.describe())
        metrics_registry = report.metrics
    if tracer is not None:
        from ..obs import write_chrome_trace

        path = write_chrome_trace(tracer, args.trace)
        print(f"wrote {path} ({len(tracer)} records; open in ui.perfetto.dev)",
              file=sys.stderr)
        metadata = getattr(tracer, "sampling_metadata", None)
        if metadata is not None:
            meta = metadata()
            kept = meta["requests"]
            print(f"  sampled: kept {kept['kept']}/{kept['total']} requests; "
                  f"{meta['records']['kept']} records kept, "
                  f"{meta['records']['dropped']} dropped "
                  f"(request-span budget {meta['budget']})", file=sys.stderr)
    if args.metrics is not None and metrics_registry is not None:
        metrics_path = metrics_registry.write(args.metrics)
        print(f"wrote {metrics_path}", file=sys.stderr)
    return 0


def trace_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``ios-bench trace`` subcommand.

    Validates a Chrome-trace JSON file (as written by ``ios-bench serve
    --trace``) against the exporter's schema and prints a compact summary:
    event counts per phase, the traced time extent, the track layout, every
    counter series with its last sampled values, and — for traces recorded
    through a :class:`~repro.obs.SamplingTracer` — the kept/dropped span
    accounting embedded in ``otherData.sampling``.
    """
    import json
    from collections import Counter

    from ..obs import validate_chrome_trace

    parser = argparse.ArgumentParser(
        prog="ios-bench trace",
        description="Validate and summarise a Chrome-trace/Perfetto JSON file "
        "written by 'ios-bench serve --trace'.",
    )
    parser.add_argument("path", help="trace JSON file to inspect")
    parser.add_argument("--quiet", action="store_true",
                        help="only report validity, no summary")
    args = parser.parse_args(argv)

    try:
        with open(args.path) as handle:
            data = json.load(handle)
    except OSError as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        print(f"error: {args.path} is not valid JSON: {error}", file=sys.stderr)
        return 1

    problems = validate_chrome_trace(data)
    if problems:
        print(f"{args.path}: INVALID — {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1

    print(f"{args.path}: OK")
    if args.quiet:
        return 0
    events = data["traceEvents"]
    phases = Counter(event["ph"] for event in events)
    timed = [event for event in events if event["ph"] != "M"]
    start_us = min(event["ts"] for event in timed)
    end_us = max(event["ts"] + event.get("dur", 0.0) for event in timed)
    print(f"  events: {len(events)} (spans={phases.get('X', 0)}, "
          f"instants={phases.get('i', 0)}, counters={phases.get('C', 0)}, "
          f"async={phases.get('b', 0) + phases.get('e', 0)}, "
          f"metadata={phases.get('M', 0)})")
    print(f"  extent: {start_us / 1e3:.3f} .. {end_us / 1e3:.3f} ms")
    # Rebuild the row layout from the metadata events, in emitted order.
    process_names = {
        event["pid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    rows = Counter(
        (event["pid"], event["tid"]) for event in timed
    )
    print(f"  tracks: {sum(1 for e in events if e['ph'] == 'M' and e['name'] == 'thread_name')}")
    for event in events:
        if event["ph"] == "M" and event["name"] == "thread_name":
            process = process_names.get(event["pid"], f"pid {event['pid']}")
            count = rows.get((event["pid"], event["tid"]), 0)
            print(f"    {process}/{event['args']['name']}: {count} events")
    # Counter series: last sampled values, in first-seen order.  (These used
    # to be lumped into the bare phase count and never itemised.)
    counters: dict[str, dict] = {}
    for event in events:
        if event["ph"] == "C":
            counters[event["name"]] = event.get("args", {})
    if counters:
        print(f"  counters: {len(counters)} series (last values)")
        for name, values in counters.items():
            rendered = ", ".join(
                f"{key}={value:g}" for key, value in sorted(values.items())
            )
            print(f"    {name}: {rendered}")
    sampling = data.get("otherData", {}).get("sampling") if isinstance(
        data.get("otherData"), dict
    ) else None
    if sampling:
        requests = sampling.get("requests", {})
        records = sampling.get("records", {})
        print(f"  sampling: kept {requests.get('kept', 0)}/"
              f"{requests.get('total', 0)} requests "
              f"({requests.get('slo_miss_kept', 0)} SLO-miss, "
              f"{requests.get('rejected_kept', 0)} rejected, "
              f"{requests.get('head_kept', 0)} head); "
              f"{records.get('kept', 0)} records kept, "
              f"{records.get('dropped', 0)} dropped "
              f"(budget {sampling.get('budget')})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (installed as ``ios-bench`` and ``repro-experiments``)."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["serve"]:
        return serve_main(argv[1:])
    if argv[:1] == ["trace"]:
        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="ios-bench",
        description="Reproduce tables and figures of 'IOS: Inter-Operator Scheduler for CNN "
        "Acceleration' on the simulated GPU.",
        epilog="'ios-bench serve ...' (subcommand first) runs the inference "
        "service instead of an experiment (ios-bench serve --help); "
        "'ios-bench trace FILE' validates and summarises a trace JSON "
        "written by 'ios-bench serve --trace'.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument("--device", default="v100", help="device preset (default: v100)")
    parser.add_argument(
        "--quick", action="store_true",
        help="restrict heavy experiments to a small model subset / fewer batch sizes",
    )
    parser.add_argument(
        "--passes", action=argparse.BooleanOptionalAction, default=False,
        help="run the repro.passes rewrite pipeline on every model graph the "
        "experiments build (ablation-passes compares both forms regardless)",
    )
    parser.add_argument("--csv-dir", default=None, help="directory to write CSV outputs to")
    args = parser.parse_args(argv)

    from ..models import set_default_optimize

    registry = _experiments(quick=args.quick, device=args.device)
    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    previous = set_default_optimize(args.passes)
    try:
        for name in names:
            table = registry[name]()
            print(table.to_text())
            print()
            _write_csv(table, args.csv_dir)
    finally:
        set_default_optimize(previous)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
