"""Figures 6 and 14: schedule comparison across the benchmark CNNs.

Five schedules — Sequential, Greedy, IOS-Merge, IOS-Parallel, IOS-Both — are
executed on the same engine (only the schedule differs) at batch size one.
Throughput is normalised to the best schedule of each model and a geometric
mean column summarises the suite.  Figure 6 uses the V100 preset; Figure 14 is
the same experiment on the RTX 2080Ti.
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.device import DeviceSpec
from ..models import BENCHMARK_MODELS
from .runner import SCHEDULE_LABELS, ExperimentContext, default_context
from .tables import ExperimentTable, geometric_mean, normalize_to_best

__all__ = ["run_figure6", "run_figure14"]


def run_figure6(
    device: str | DeviceSpec = "v100",
    models: Sequence[str] | None = None,
    batch_size: int = 1,
    context: ExperimentContext | None = None,
    experiment_id: str = "figure6",
) -> ExperimentTable:
    """Normalised throughput of the five schedules on each benchmark CNN."""
    ctx = context or default_context(device)
    models = list(models) if models is not None else list(BENCHMARK_MODELS)
    table = ExperimentTable(
        experiment_id=experiment_id,
        title=f"{experiment_id}: schedule comparison on {ctx.device.name} (batch {batch_size})",
        columns=["network"] + SCHEDULE_LABELS + ["best_latency_ms", "ios_speedup_vs_sequential"],
        notes="columns are throughput normalised to the best schedule of each network",
    )

    normalized_per_label: dict[str, list[float]] = {label: [] for label in SCHEDULE_LABELS}
    for model_name in models:
        runs = ctx.compare_schedules(model_name, SCHEDULE_LABELS, batch_size=batch_size)
        throughputs = {label: run.throughput for label, run in runs.items()}
        normalized = normalize_to_best(throughputs)
        for label in SCHEDULE_LABELS:
            normalized_per_label[label].append(normalized[label])
        best_latency = min(run.latency_ms for run in runs.values())
        table.add_row(
            network=model_name,
            best_latency_ms=best_latency,
            ios_speedup_vs_sequential=runs["sequential"].latency_ms / runs["ios-both"].latency_ms,
            **normalized,
        )

    geo_row = {label: geometric_mean(values) for label, values in normalized_per_label.items()}
    table.add_row(network="geomean", best_latency_ms=float("nan"),
                  ios_speedup_vs_sequential=float("nan"), **geo_row)
    return table


def run_figure14(
    models: Sequence[str] | None = None,
    batch_size: int = 1,
    context: ExperimentContext | None = None,
) -> ExperimentTable:
    """Appendix B, Figure 14: the same schedule comparison on an RTX 2080Ti."""
    return run_figure6(
        device="rtx2080ti",
        models=models,
        batch_size=batch_size,
        context=context,
        experiment_id="figure14",
    )
