"""Figure 13 / Appendix A: the worst-case graph for the complexity bound.

The DAG made of ``d`` independent chains of ``c`` operators each reaches the
transition upper bound ``C(c+2, 2)^d``.  This experiment counts the exact
number of (state, ending) pairs of such graphs for several (c, d) and compares
them with the bound, confirming the bound is tight for this family.
"""

from __future__ import annotations

from typing import Sequence

from ..core.complexity import count_transitions_and_states, transition_upper_bound
from ..models import parallel_chains_graph
from .tables import ExperimentTable

__all__ = ["run_figure13", "DEFAULT_CHAIN_CONFIGS"]

#: (chain length c, number of chains d) pairs; kept small because the count is
#: exponential in d by design.
DEFAULT_CHAIN_CONFIGS = [(1, 2), (2, 2), (3, 2), (2, 3), (3, 3), (2, 4), (3, 4)]


def run_figure13(configs: Sequence[tuple[int, int]] | None = None) -> ExperimentTable:
    """Exact transition counts of d-chain graphs vs the theoretical bound."""
    configs = list(configs) if configs is not None else list(DEFAULT_CHAIN_CONFIGS)
    table = ExperimentTable(
        experiment_id="figure13",
        title="Figure 13 / Appendix A: tightness of the transition bound on d independent chains",
        columns=[
            "chain_length_c",
            "num_chains_d",
            "n",
            "transitions",
            "num_states",
            "transitions_incl_empty",
            "bound",
            "ratio",
        ],
        notes=(
            "the paper's bound counts (state, ending) pairs allowing the per-chain ending to be "
            "empty; adding the one empty-ending pair per state (transitions + num_states) meets "
            "the bound with equality for this worst-case family (ratio = 1.0)"
        ),
    )
    for c, d in configs:
        graph = parallel_chains_graph(num_chains=d, chain_length=c, join=False)
        op_names = graph.schedulable_names()
        transitions, states = count_transitions_and_states(graph, op_names)
        bound = transition_upper_bound(len(op_names), d)
        including_empty = transitions + states
        table.add_row(
            chain_length_c=c,
            num_chains_d=d,
            n=len(op_names),
            transitions=transitions,
            num_states=states,
            transitions_incl_empty=including_empty,
            bound=bound,
            ratio=including_empty / bound if bound else float("nan"),
        )
    return table
