"""Unit tests for repro.ir.graph, validate, flops, serialization and visualize."""

from __future__ import annotations

import pytest

from repro.ir import (
    Conv2d,
    Graph,
    GraphBuilder,
    GraphValidationError,
    Placeholder,
    TensorShape,
    block_summary_table,
    conv_statistics,
    graph_cost_breakdown,
    graph_from_dict,
    graph_to_dict,
    graph_to_dot,
    graph_to_text,
    load_graph,
    operator_cost,
    save_graph,
    validate_graph,
)
from repro.models import figure2_block


class TestGraphBuilder:
    def test_builds_diamond(self, diamond):
        assert len(diamond.operators()) == 4
        assert diamond.input_shape == TensorShape(1, 64, 28, 28)
        assert diamond.batch_size == 1

    def test_edges_and_neighbors(self, diamond):
        assert set(diamond.predecessors("join")) == {"left", "right"}
        assert set(diamond.successors("top")) == {"left", "right"}
        assert ("top", "left") in diamond.edges()

    def test_output_names(self, diamond):
        assert diamond.output_names() == ["join"]

    def test_duplicate_name_rejected(self):
        builder = GraphBuilder("g", TensorShape(1, 3, 8, 8))
        builder.conv2d("a", builder.input_name, 8, 3)
        with pytest.raises(ValueError):
            builder.conv2d("a", builder.input_name, 8, 3)

    def test_unknown_input_rejected(self):
        builder = GraphBuilder("g", TensorShape(1, 3, 8, 8))
        with pytest.raises(ValueError):
            builder.conv2d("a", "nonexistent", 8, 3)

    def test_blocks_collect_ops(self, fig2):
        assert len(fig2.blocks) == 1
        assert set(fig2.blocks[0].node_names) == {"conv_a", "conv_b", "conv_c", "conv_d", "concat"}

    def test_implicit_block_created_outside_explicit(self):
        builder = GraphBuilder("g", TensorShape(1, 3, 8, 8))
        builder.conv2d("a", builder.input_name, 8, 3)
        graph = builder.build()
        assert graph.block_of("a") is not None

    def test_nested_blocks_rejected(self):
        builder = GraphBuilder("g", TensorShape(1, 3, 8, 8))
        with builder.block("outer"):
            with pytest.raises(RuntimeError):
                builder._begin_block("inner")

    def test_schedulable_names_exclude_placeholder(self, diamond):
        assert "input" not in diamond.schedulable_names()
        assert len(diamond.schedulable_names()) == 4


class TestTopologicalOrder:
    def test_full_order_respects_dependencies(self, fig2):
        order = fig2.topological_order()
        assert order.index("conv_a") < order.index("conv_b")
        assert order.index("conv_b") < order.index("concat")

    def test_subset_order(self, fig2):
        order = fig2.topological_order(["conv_b", "conv_a"])
        assert order == ["conv_a", "conv_b"]

    def test_cycle_detection(self):
        graph = Graph("cyclic")
        graph.add_node(Placeholder("input", TensorShape(1, 3, 8, 8)))
        block = graph.add_block("b")
        a = Conv2d("a", ["input"], 8, 3)
        a.bind([TensorShape(1, 3, 8, 8)])
        graph.add_node(a, block)
        # Manually create a cycle a -> b -> a.
        b = Conv2d("b", ["a"], 8, 3)
        b.bind([a.output_shape])
        graph.add_node(b, block)
        graph.nodes["a"].inputs = ("input", "b")
        graph._consumers["b"].append("a")
        with pytest.raises(ValueError):
            graph.topological_order()


class TestWithBatchSize:
    def test_rebatches_all_shapes(self, fig2):
        graph32 = fig2.with_batch_size(32)
        assert graph32.batch_size == 32
        assert graph32.nodes["conv_a"].output_shape.batch == 32
        # Original untouched.
        assert fig2.batch_size == 1

    def test_preserves_structure_and_blocks(self, diamond):
        clone = diamond.with_batch_size(8)
        assert [op.name for op in clone.operators()] == [op.name for op in diamond.operators()]
        assert [b.name for b in clone.blocks] == [b.name for b in diamond.blocks]
        assert clone.block_of("left").name == diamond.block_of("left").name

    def test_flops_scale_linearly_with_batch(self, diamond):
        assert diamond.with_batch_size(4).total_flops() == pytest.approx(
            4 * diamond.total_flops(), rel=1e-6
        )

    def test_rejects_bad_batch(self, diamond):
        with pytest.raises(ValueError):
            diamond.with_batch_size(0)


class TestValidation:
    def test_valid_graph_passes(self, fig2):
        validate_graph(fig2)

    def test_missing_block_membership_rejected(self):
        graph = Graph("g")
        graph.add_node(Placeholder("input", TensorShape(1, 3, 8, 8)))
        conv = Conv2d("a", ["input"], 8, 3)
        conv.bind([TensorShape(1, 3, 8, 8)])
        graph.add_node(conv, None)  # not assigned to any block
        with pytest.raises(GraphValidationError):
            validate_graph(graph)

    def test_double_block_membership_rejected(self, diamond):
        diamond.blocks[0].node_names.append("left")  # duplicate membership
        with pytest.raises(GraphValidationError):
            validate_graph(diamond)

    def test_backward_block_edge_rejected(self):
        builder = GraphBuilder("g", TensorShape(1, 8, 8, 8))
        with builder.block("b1"):
            a = builder.conv2d("a", builder.input_name, 8, 3)
        with builder.block("b2"):
            builder.conv2d("b", a, 8, 3)
        graph = builder.graph
        # Force an edge from block b2 back into block b1.
        graph.blocks[0], graph.blocks[1] = graph.blocks[1], graph.blocks[0]
        with pytest.raises(GraphValidationError):
            validate_graph(graph)

    def test_two_placeholders_rejected(self):
        graph = Graph("g")
        graph.add_node(Placeholder("in1", TensorShape(1, 3, 8, 8)))
        graph.add_node(Placeholder("in2", TensorShape(1, 3, 8, 8)))
        with pytest.raises(GraphValidationError):
            validate_graph(graph)


class TestCostAccounting:
    def test_operator_cost_fields(self, diamond):
        cost = operator_cost(diamond.nodes["left"])
        assert cost.flops > 0
        assert cost.memory_bytes > cost.output_bytes
        assert cost.arithmetic_intensity > 0

    def test_breakdown_covers_all_operators(self, fig2):
        breakdown = graph_cost_breakdown(fig2)
        assert len(breakdown) == len(fig2.operators())
        assert sum(c.flops for c in breakdown) == fig2.total_flops()

    def test_conv_statistics(self, fig2):
        stats = conv_statistics(fig2)
        assert stats.num_convolutions == 4
        assert stats.average_flops_per_conv == pytest.approx(
            sum(op.flops() for op in fig2.conv_operators()) / 4
        )

    def test_total_params_positive(self, fig2):
        assert fig2.total_params() > 0
        assert fig2.total_weight_bytes() == fig2.total_params() * 4


class TestSerialization:
    def test_dict_roundtrip(self, fig2):
        rebuilt = graph_from_dict(graph_to_dict(fig2))
        assert [op.name for op in rebuilt.operators()] == [op.name for op in fig2.operators()]
        assert rebuilt.total_flops() == fig2.total_flops()
        assert [b.name for b in rebuilt.blocks] == [b.name for b in fig2.blocks]
        assert rebuilt.block_of("conv_a").name == fig2.block_of("conv_a").name

    def test_file_roundtrip(self, tmp_path, diamond):
        path = save_graph(diamond, tmp_path / "diamond.json")
        loaded = load_graph(path)
        assert loaded.input_shape == diamond.input_shape
        assert len(loaded.operators()) == len(diamond.operators())

    def test_version_check(self, fig2):
        data = graph_to_dict(fig2)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(data)


class TestVisualization:
    def test_text_contains_all_nodes(self, fig2):
        text = graph_to_text(fig2)
        for name in ("conv_a", "conv_b", "concat"):
            assert name in text

    def test_text_truncation(self, fig2):
        text = graph_to_text(fig2, max_nodes=2)
        assert "more operators" in text

    def test_dot_is_valid_ish(self, diamond):
        dot = graph_to_dot(diamond)
        assert dot.startswith("digraph")
        assert '"top" -> "left"' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_without_clusters(self, diamond):
        dot = graph_to_dot(diamond, cluster_blocks=False)
        assert "cluster" not in dot

    def test_block_summary(self):
        graph = figure2_block()
        summary = block_summary_table(graph)
        assert "block" in summary
        assert "GFLOPs" in summary
