"""Tests for canonical graph fingerprints (repro.ir.fingerprint)."""

from __future__ import annotations

import pytest

from repro.ir import (
    GraphBuilder,
    TensorShape,
    canonical_order,
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
)
from repro.models import build_model


def small_graph(name="g", *, swap_branches=False, rename=False, channels=8):
    b = GraphBuilder(name, TensorShape(1, 3, 16, 16))
    prefix = "n_" if rename else ""
    left = b.conv2d(f"{prefix}left", b.input_name, out_channels=channels, kernel=3)
    right = b.conv2d(f"{prefix}right", b.input_name, out_channels=channels, kernel=1)
    branches = [right, left] if swap_branches else [left, right]
    b.concat(f"{prefix}cat", branches)
    return b.build()


class TestCanonicalOrder:
    def test_is_a_topological_order(self):
        graph = build_model("squeezenet")
        order = canonical_order(graph)
        assert sorted(order) == sorted(graph.nodes)
        position = {name: i for i, name in enumerate(order)}
        for producer, consumer in graph.edges():
            assert position[producer] < position[consumer]

    def test_deterministic_across_calls(self, diamond):
        assert canonical_order(diamond) == canonical_order(diamond)

    def test_independent_of_insertion_order(self):
        # Build the same structure with the two sibling convolutions added in
        # opposite orders: canonical order must not notice.
        def build(right_first: bool):
            b = GraphBuilder("g", TensorShape(1, 3, 16, 16))
            if right_first:
                right = b.conv2d("right", b.input_name, out_channels=8, kernel=1)
                left = b.conv2d("left", b.input_name, out_channels=8, kernel=3)
            else:
                left = b.conv2d("left", b.input_name, out_channels=8, kernel=3)
                right = b.conv2d("right", b.input_name, out_channels=8, kernel=1)
            b.concat("cat", [left, right])
            return b.build()

        assert canonical_order(build(True)) == canonical_order(build(False))
        assert graph_fingerprint(build(True)) == graph_fingerprint(build(False))


class TestGraphFingerprint:
    def test_stable_across_rebuilds(self):
        assert graph_fingerprint(small_graph()) == graph_fingerprint(small_graph())

    def test_serialisation_round_trip_preserves_fingerprint(self):
        graph = build_model("squeezenet")
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)

    def test_name_independent(self):
        assert graph_fingerprint(small_graph(rename=True)) == graph_fingerprint(
            small_graph()
        )
        assert graph_fingerprint(small_graph(name="other")) == graph_fingerprint(
            small_graph()
        )

    def test_input_order_matters_for_concat(self):
        # concat(a, b) != concat(b, a): channel layout differs.
        assert graph_fingerprint(small_graph(swap_branches=True)) != graph_fingerprint(
            small_graph()
        )

    def test_structural_changes_change_the_fingerprint(self):
        base = graph_fingerprint(small_graph())
        assert graph_fingerprint(small_graph(channels=16)) != base

    def test_batch_size_changes_the_fingerprint(self):
        one = build_model("squeezenet", batch_size=1)
        eight = build_model("squeezenet", batch_size=8)
        assert graph_fingerprint(one) != graph_fingerprint(eight)

    def test_block_structure_changes_the_fingerprint(self):
        def build(two_blocks: bool):
            b = GraphBuilder("g", TensorShape(1, 3, 8, 8))
            with b.block("first"):
                x = b.conv2d("a", b.input_name, out_channels=4, kernel=3)
            if two_blocks:
                with b.block("second"):
                    b.conv2d("b", x, out_channels=4, kernel=3)
            else:
                with b.block("first_more"):
                    b.conv2d("b", x, out_channels=4, kernel=3)
            return b.build()

        # Same ops and wiring; only the block *positions* coincide, so these
        # two fingerprints agree — but merging both ops into one block differs.
        b = GraphBuilder("g", TensorShape(1, 3, 8, 8))
        with b.block("only"):
            x = b.conv2d("a", b.input_name, out_channels=4, kernel=3)
            b.conv2d("b", x, out_channels=4, kernel=3)
        merged = b.build()
        assert graph_fingerprint(build(True)) == graph_fingerprint(build(False))
        assert graph_fingerprint(merged) != graph_fingerprint(build(True))

    def test_length_parameter(self):
        fp = graph_fingerprint(small_graph(), length=32)
        assert len(fp) == 32
        assert fp.startswith(graph_fingerprint(small_graph()))

    def test_cycle_detection(self, diamond):
        diamond.nodes["top"].inputs = ("join",)  # corrupt: create a cycle
        with pytest.raises(ValueError, match="cycle"):
            canonical_order(diamond)
