"""Pass-pipeline behaviour on imported graphs: the compile-time fusion the
importer deliberately leaves on the table, and confluence of the pipeline."""

from __future__ import annotations

from pathlib import Path

from repro.frontend import load
from repro.ir import graph_fingerprint
from repro.passes import PassManager, optimize_graph, unfuse_activations

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _transformer():
    return load(EXAMPLES / "transformer_block.json")


def test_fuse_epilogue_folds_the_standalone_gelu():
    result = optimize_graph(_transformer(), cache=False)
    rewrites = {stats.name: stats.rewrites for stats in result.stats}
    assert rewrites["fuse-epilogue"] >= 1
    optimized = result.graph
    assert "ffn_act" not in optimized.nodes
    assert optimized.nodes["ffn_up"].attrs()["activation"] == "gelu"


def test_pipeline_is_idempotent_on_the_imported_transformer():
    once = optimize_graph(_transformer(), cache=False).graph
    twice = optimize_graph(once, cache=False).graph
    assert graph_fingerprint(twice) == graph_fingerprint(once)


def test_fusion_order_does_not_change_the_result():
    forward = PassManager(["fuse-activation", "fuse-epilogue", "eliminate-dead",
                           "canonicalize"]).run(_transformer()).graph
    backward = PassManager(["fuse-epilogue", "fuse-activation", "eliminate-dead",
                            "canonicalize"]).run(_transformer()).graph
    assert graph_fingerprint(forward) == graph_fingerprint(backward)


def test_unfuse_then_optimize_round_trips():
    optimized = optimize_graph(_transformer(), cache=False).graph
    refused = optimize_graph(unfuse_activations(optimized), cache=False).graph
    assert graph_fingerprint(refused) == graph_fingerprint(optimized)


def test_shared_weight_cse_merges_tied_projections():
    doc = {
        "ir": "onnx-subset",
        "name": "tied",
        "inputs": [{"name": "x", "shape": [8, 32]}],
        "initializers": [{"name": "w", "shape": [32, 32]}],
        "nodes": [
            {"name": "p1", "op_type": "MatMul", "inputs": ["x", "w"]},
            {"name": "p2", "op_type": "MatMul", "inputs": ["x", "w"]},
            {"name": "both", "op_type": "Add", "inputs": ["p1", "p2"]},
        ],
    }
    result = optimize_graph(load(doc), cache=False)
    rewrites = {stats.name: stats.rewrites for stats in result.stats}
    assert rewrites["cse-shared-weights"] >= 1
    survivors = [n for n in result.graph.nodes.values() if n.kind == "matmul"]
    assert len(survivors) == 1
