"""Layer-config importer: sequential stacks, aliases, registry errors."""

from __future__ import annotations

import pytest

from repro.frontend import FrontendError, import_layer_config, load
from repro.ir import graph_fingerprint


def _tiny_vgg():
    return {
        "format": "layer-config",
        "name": "tiny_vgg",
        "input": [1, 3, 32, 32],
        "layers": [
            {"type": "conv", "out_channels": 16, "kernel": 3, "activation": "relu"},
            {"type": "maxpool", "kernel": 2, "stride": 2, "padding": 0},
            {"type": "flatten"},
            {"type": "fc", "out_features": 10},
        ],
    }


def test_sequential_stack_imports_and_validates():
    graph = import_layer_config(_tiny_vgg())
    assert [b.name for b in graph.blocks] == ["layers"]
    kinds = [graph.nodes[n].kind for n in graph.topological_order()
             if graph.nodes[n].kind != "placeholder"]
    assert kinds == ["conv2d", "pool2d", "flatten", "linear"]
    assert graph.nodes["l3_linear"].output_shape.dims() == (1, 10)


def test_aliases_cover_torchvision_spellings():
    doc = {
        "format": "layer-config",
        "input": [4, 128],
        "layers": [
            {"type": "dense", "out_features": 64},
            {"type": "layernorm"},
            {"type": "gelu"},
        ],
    }
    graph = import_layer_config(doc)
    kinds = {graph.nodes[n].kind for n in graph.nodes}
    assert {"linear", "layer_norm", "gelu"} <= kinds


def test_explicit_layer_names_are_kept():
    doc = _tiny_vgg()
    doc["layers"][0]["name"] = "stem"
    graph = import_layer_config(doc)
    assert "stem" in graph.nodes


def test_typo_fails_with_nearest_name_suggestion():
    doc = _tiny_vgg()
    doc["layers"][0]["type"] = "conv2"
    with pytest.raises(FrontendError, match="Did you mean 'conv2d'"):
        import_layer_config(doc)


def test_missing_type_is_rejected():
    doc = _tiny_vgg()
    del doc["layers"][0]["type"]
    with pytest.raises(FrontendError, match="missing its 'type'"):
        import_layer_config(doc)


def test_bad_input_rank_is_rejected():
    doc = _tiny_vgg()
    doc["input"] = [1, 3, 32]
    with pytest.raises(FrontendError, match="2-D or 4-D"):
        import_layer_config(doc)


def test_load_detects_layer_config_dicts():
    assert graph_fingerprint(load(_tiny_vgg())) == graph_fingerprint(
        import_layer_config(_tiny_vgg())
    )
