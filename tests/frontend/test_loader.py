"""The unified model-source API: load(), format detection, the zoo shim,
and the third-party operator extension path."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import pytest

from repro.frontend import FrontendError, detect_format, import_onnx, load
from repro.ir import (
    OP_REGISTRY,
    Graph,
    Operator,
    graph_fingerprint,
    register_operator,
)
from repro.ir.serialization import graph_from_dict, graph_to_dict
from repro.models import build_model, resolve_zoo_builder

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestDetectFormat:
    def test_declared_keys_win(self):
        assert detect_format({"ir": "onnx-subset"}) == "onnx-subset"
        assert detect_format({"format": "layer-config"}) == "layer-config"
        assert detect_format({"format": "ir-graph"}) == "ir-graph"

    def test_structural_detection(self):
        assert detect_format({"layers": []}) == "layer-config"
        assert detect_format({"nodes": [{"op_type": "Relu"}]}) == "onnx-subset"
        assert detect_format({"nodes": [{"kind": "relu"}]}) == "ir-graph"

    def test_undetectable_dict_is_rejected(self):
        with pytest.raises(FrontendError, match="cannot detect"):
            detect_format({"weights": []})


class TestLoad:
    def test_zoo_name_builds_the_model(self):
        graph = load("squeezenet", batch_size=2)
        assert graph.name == "squeezenet"
        assert graph.input_shape.batch == 2

    def test_zoo_aliases_and_spellings_resolve(self):
        base = graph_fingerprint(load("resnet_18"))
        assert graph_fingerprint(load("ResNet-18")) == base
        assert graph_fingerprint(load("resnet18")) == base

    def test_unknown_zoo_name_lists_the_registry(self):
        with pytest.raises(KeyError, match="squeezenet"):
            resolve_zoo_builder("no_such_model")

    def test_graph_passthrough_returns_the_same_object(self):
        graph = load("squeezenet")
        assert load(graph) is graph

    def test_graph_passthrough_rebatches_when_asked(self):
        graph = load("squeezenet", batch_size=1)
        rebatched = load(graph, batch_size=4)
        assert rebatched.input_shape.batch == 4

    def test_path_and_str_path_load_the_same_file(self):
        path = EXAMPLES / "transformer_block.json"
        assert graph_fingerprint(load(path)) == graph_fingerprint(load(str(path)))

    def test_missing_file_raises_frontend_error(self):
        with pytest.raises(FrontendError, match="does not exist"):
            load("no/such/model.json")

    def test_invalid_json_raises_frontend_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FrontendError, match="not valid JSON"):
            load(bad)

    def test_serialised_ir_graph_files_load(self, tmp_path):
        graph = load("transformer_block")
        path = tmp_path / "saved.json"
        path.write_text(json.dumps(graph_to_dict(graph)))
        assert graph_fingerprint(load(path)) == graph_fingerprint(graph)

    def test_unsupported_source_type_raises(self):
        with pytest.raises(TypeError, match="cannot load"):
            load(42)

    def test_optimize_true_runs_the_default_pipeline(self):
        raw = load("transformer_block")
        optimized = load("transformer_block", optimize=True)
        # fuse-epilogue folds the standalone GELU into its projection.
        assert "ffn_act" in raw.nodes
        assert "ffn_act" not in optimized.nodes

    def test_optimize_default_follows_the_process_wide_flag(self):
        from repro.models import set_default_optimize

        previous = set_default_optimize(True)
        try:
            assert "ffn_act" not in load("transformer_block").nodes
        finally:
            set_default_optimize(previous)


class TestBuildModelShim:
    def test_build_model_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="repro.frontend.load"):
            graph = build_model("squeezenet", batch_size=2)
        assert graph_fingerprint(graph) == graph_fingerprint(
            load("squeezenet", batch_size=2)
        )

    def test_build_model_accepts_paths_too(self):
        # build_model's legacy default batch_size=1 re-batches the imported
        # graph (64 token rows) down to one row; load() with the same batch
        # size must agree exactly.
        with pytest.warns(DeprecationWarning):
            graph = build_model(str(EXAMPLES / "transformer_block.json"))
        expected = load(EXAMPLES / "transformer_block.json", batch_size=1)
        assert graph_fingerprint(graph) == graph_fingerprint(expected)


class _Quantize(Operator):
    """A third-party shape-preserving operator used by the extension tests."""

    kind = "test_quantize"

    def __init__(self, name: str, inputs: Sequence[str], bits: int = 8):
        super().__init__(name, inputs)
        self.bits = int(bits)

    def infer_shape(self, input_shapes):
        return input_shapes[0]

    def flops(self) -> int:
        shapes = self._require_bound()
        return shapes[0].numel()

    def attrs(self):
        return {"bits": self.bits}


@pytest.fixture
def quantize_registered():
    register_operator(_Quantize)
    try:
        yield
    finally:
        OP_REGISTRY.pop("test_quantize", None)


class TestThirdPartyOperators:
    def _doc(self):
        return {
            "ir": "onnx-subset",
            "name": "quantized",
            "inputs": [{"name": "x", "shape": [4, 32]}],
            "initializers": [{"name": "w", "shape": [32, 16]}],
            "nodes": [
                {"name": "fc", "op_type": "MatMul", "inputs": ["x", "w"]},
                {"name": "q", "op_type": "test_quantize", "inputs": ["fc"],
                 "attrs": {"bits": 4}},
            ],
        }

    def test_registered_kind_imports_with_verbatim_attrs(self, quantize_registered):
        graph = import_onnx(self._doc())
        q = graph.nodes["q"]
        assert isinstance(q, _Quantize)
        assert q.bits == 4

    def test_round_trips_through_serialisation(self, quantize_registered):
        graph = import_onnx(self._doc())
        reloaded = graph_from_dict(graph_to_dict(graph))
        assert isinstance(reloaded.nodes["q"], _Quantize)
        assert graph_fingerprint(reloaded) == graph_fingerprint(graph)

    def test_unregistered_kind_degrades_to_opaque_instead(self):
        graph = import_onnx(self._doc())
        assert graph.nodes["q"].kind == "opaque"
        assert graph.nodes["q"].attrs()["op_type"] == "test_quantize"

    def test_layer_config_resolves_through_the_registry_too(self, quantize_registered):
        doc = {
            "format": "layer-config",
            "input": [4, 32],
            "layers": [{"type": "linear", "out_features": 16},
                       {"type": "test_quantize", "bits": 2}],
        }
        graph = load(doc)
        assert graph.nodes["l1_test_quantize"].bits == 2
