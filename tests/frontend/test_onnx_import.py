"""ONNX-subset importer: bridges, blocks, opaque degradation, round-trips."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.frontend import FrontendError, import_onnx, load
from repro.ir import graph_fingerprint
from repro.ir.serialization import graph_from_dict, graph_to_dict

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _simple_mlp(extra_nodes=(), extra_inits=(), blocks=None):
    """A minimal valid document: one projection + relu, easily extended."""
    doc = {
        "ir": "onnx-subset",
        "name": "mlp",
        "inputs": [{"name": "x", "shape": [8, 32]}],
        "initializers": [{"name": "w0", "shape": [32, 16]}, *extra_inits],
        "nodes": [
            {"name": "fc0", "op_type": "MatMul", "inputs": ["x", "w0"]},
            {"name": "act0", "op_type": "Relu", "inputs": ["fc0"]},
            *extra_nodes,
        ],
    }
    if blocks is not None:
        doc["blocks"] = blocks
    return doc


class TestBridges:
    def test_matmul_with_initializer_becomes_projection(self):
        graph = import_onnx(_simple_mlp())
        fc0 = graph.nodes["fc0"]
        assert fc0.kind == "matmul"
        assert fc0.is_projection
        assert fc0.attrs()["weight_id"] == "w0"
        assert fc0.output_shape.channels == 16
        assert fc0.weight_count() == 32 * 16 + 16

    def test_matmul_of_two_activations_is_weightless(self):
        doc = {
            "ir": "onnx-subset",
            "name": "scores",
            "inputs": [{"name": "x", "shape": [8, 32]}],
            "initializers": [],
            "nodes": [
                {"name": "xT", "op_type": "Transpose", "inputs": ["x"],
                 "attrs": {"perm": [1, 0]}},
                {"name": "gram", "op_type": "MatMul", "inputs": ["x", "xT"]},
            ],
        }
        graph = import_onnx(doc)
        gram = graph.nodes["gram"]
        assert not gram.is_projection
        assert gram.weight_count() == 0
        assert (gram.output_shape.batch, gram.output_shape.channels) == (8, 8)

    def test_weight_first_matmul_is_rejected(self):
        doc = _simple_mlp()
        doc["nodes"][0]["inputs"] = ["w0", "x"]
        with pytest.raises(FrontendError, match="weight-first"):
            import_onnx(doc)

    def test_gemm_respects_transB(self):
        doc = {
            "ir": "onnx-subset",
            "name": "gemm",
            "inputs": [{"name": "x", "shape": [4, 32]}],
            "initializers": [{"name": "w", "shape": [16, 32]},
                             {"name": "b", "shape": [16]}],
            "nodes": [{"name": "fc", "op_type": "Gemm",
                       "inputs": ["x", "w", "b"], "attrs": {"transB": 1}}],
        }
        graph = import_onnx(doc)
        assert graph.nodes["fc"].output_shape.channels == 16

    def test_initializer_bias_add_folds_into_projection(self):
        doc = _simple_mlp(
            extra_nodes=[
                {"name": "biased", "op_type": "Add", "inputs": ["act0", "b0"]},
                {"name": "out", "op_type": "Relu", "inputs": ["biased"]},
            ],
            extra_inits=[{"name": "b0", "shape": [16]}],
        )
        # The fold only fires when the producer is a projection, so hang the
        # Add off fc0 directly instead of the relu.
        doc["nodes"][2]["inputs"] = ["fc0", "b0"]
        doc["nodes"][3]["inputs"] = ["biased"]
        graph = import_onnx(doc)
        assert "biased" not in graph.nodes
        assert graph.nodes["out"].inputs == ("fc0",)

    def test_add_of_activation_and_2d_initializer_is_rejected(self):
        doc = _simple_mlp(
            extra_nodes=[{"name": "bad", "op_type": "Add", "inputs": ["act0", "m"]}],
            extra_inits=[{"name": "m", "shape": [8, 16]}],
        )
        with pytest.raises(FrontendError, match="unsupported operand mix"):
            import_onnx(doc)

    def test_dropout_and_identity_alias_through(self):
        doc = _simple_mlp(extra_nodes=[
            {"name": "drop", "op_type": "Dropout", "inputs": ["act0"]},
            {"name": "ident", "op_type": "Identity", "inputs": ["drop"]},
            {"name": "out", "op_type": "Softmax", "inputs": ["ident"]},
        ])
        graph = import_onnx(doc)
        assert "drop" not in graph.nodes and "ident" not in graph.nodes
        assert graph.nodes["out"].inputs == ("act0",)

    def test_conv_bridge_builds_a_cnn(self):
        doc = {
            "ir": "onnx-subset",
            "name": "tiny_cnn",
            "inputs": [{"name": "image", "shape": [1, 3, 32, 32]}],
            "initializers": [{"name": "w", "shape": [8, 3, 3, 3]}],
            "nodes": [
                {"name": "conv", "op_type": "Conv", "inputs": ["image", "w"],
                 "attrs": {"pads": [1, 1, 1, 1]}},
                {"name": "act", "op_type": "Relu", "inputs": ["conv"]},
                {"name": "pool", "op_type": "MaxPool", "inputs": ["act"],
                 "attrs": {"kernel_shape": [2, 2], "strides": [2, 2]}},
                {"name": "gap", "op_type": "GlobalAveragePool", "inputs": ["pool"]},
                {"name": "flat", "op_type": "Flatten", "inputs": ["gap"]},
            ],
        }
        graph = import_onnx(doc)
        assert graph.nodes["conv"].output_shape.dims() == (1, 8, 32, 32)
        assert graph.nodes["pool"].output_shape.dims() == (1, 8, 16, 16)
        assert graph.nodes["flat"].output_shape.dims() == (1, 8)

    def test_asymmetric_conv_padding_is_rejected(self):
        doc = {
            "ir": "onnx-subset",
            "name": "bad_conv",
            "inputs": [{"name": "image", "shape": [1, 3, 32, 32]}],
            "initializers": [{"name": "w", "shape": [8, 3, 3, 3]}],
            "nodes": [{"name": "conv", "op_type": "Conv", "inputs": ["image", "w"],
                       "attrs": {"pads": [0, 0, 1, 1]}}],
        }
        with pytest.raises(FrontendError, match="symmetric"):
            import_onnx(doc)

    def test_non_trailing_transpose_degrades_to_opaque(self):
        doc = {
            "ir": "onnx-subset",
            "name": "perm",
            "inputs": [{"name": "x", "shape": [1, 3, 8, 8]}],
            "initializers": [],
            "nodes": [{"name": "t", "op_type": "Transpose", "inputs": ["x"],
                       "attrs": {"perm": [0, 2, 3, 1]}}],
        }
        graph = import_onnx(doc)
        assert graph.nodes["t"].kind == "opaque"


class TestImportStructure:
    def test_nodes_out_of_topological_order_are_rejected(self):
        doc = _simple_mlp()
        doc["nodes"].reverse()
        with pytest.raises(FrontendError, match="topological"):
            import_onnx(doc)

    def test_two_graph_inputs_are_rejected(self):
        doc = _simple_mlp()
        doc["inputs"].append({"name": "y", "shape": [8, 32]})
        with pytest.raises(FrontendError, match="exactly one"):
            import_onnx(doc)

    def test_empty_model_is_rejected(self):
        doc = _simple_mlp()
        doc["nodes"] = []
        with pytest.raises(FrontendError, match="no nodes"):
            import_onnx(doc)

    def test_default_is_a_single_main_block(self):
        graph = import_onnx(_simple_mlp())
        assert [b.name for b in graph.blocks] == ["main"]
        assert set(graph.blocks[0].node_names) == {"fc0", "act0"}

    def test_declared_blocks_are_honoured_and_empty_ones_pruned(self):
        doc = _simple_mlp(blocks=[
            {"name": "proj", "nodes": ["fc0"]},
            {"name": "act", "nodes": ["act0"]},
            {"name": "ghost", "nodes": []},
        ])
        graph = import_onnx(doc)
        assert [b.name for b in graph.blocks] == ["proj", "act"]

    def test_node_missing_from_every_block_is_rejected(self):
        doc = _simple_mlp(blocks=[{"name": "proj", "nodes": ["fc0"]}])
        with pytest.raises(FrontendError, match="not assigned to any block"):
            import_onnx(doc)

    def test_name_override_wins_over_declared_name(self):
        assert import_onnx(_simple_mlp(), name="renamed").name == "renamed"


class TestOpaqueDegradation:
    def _rotary_doc(self, attrs=None):
        return {
            "ir": "onnx-subset",
            "name": "with_unknown",
            "inputs": [{"name": "x", "shape": [8, 64]}],
            "initializers": [{"name": "w", "shape": [64, 64]}],
            "nodes": [
                {"name": "proj", "op_type": "MatMul", "inputs": ["x", "w"]},
                {"name": "rope", "op_type": "RotaryEmbedding",
                 "inputs": ["proj"], "attrs": dict(attrs or {})},
                {"name": "out", "op_type": "Softmax", "inputs": ["rope"]},
            ],
        }

    def test_unknown_op_imports_as_opaque(self):
        graph = import_onnx(self._rotary_doc())
        rope = graph.nodes["rope"]
        assert rope.kind == "opaque"
        assert rope.attrs()["op_type"] == "RotaryEmbedding"
        # Shape-preserving fallback over the first activation input.
        assert rope.output_shape == graph.nodes["proj"].output_shape

    def test_declared_shape_and_flops_are_used(self):
        graph = import_onnx(self._rotary_doc(
            attrs={"shape": [8, 64], "flops": 4096}
        ))
        assert graph.nodes["rope"].flops() == 4096

    def test_declared_flops_scale_with_rebatching(self):
        graph = import_onnx(self._rotary_doc(attrs={"shape": [8, 64], "flops": 4096}))
        doubled = graph.with_batch_size(16)
        assert doubled.nodes["rope"].flops() == 8192

    def test_digest_distinguishes_differently_configured_nodes(self):
        g1 = import_onnx(self._rotary_doc(attrs={"theta": 10000}))
        g2 = import_onnx(self._rotary_doc(attrs={"theta": 500000}))
        assert g1.nodes["rope"].attrs()["digest"] != g2.nodes["rope"].attrs()["digest"]
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_opaque_graph_compiles_and_serves(self, v100):
        from repro.engine import Engine
        from repro.serve import ScheduleRegistry

        doc = self._rotary_doc()
        compiled = Engine(v100).compile(import_onnx(doc))
        assert any("rope" in stage.operators for stage in compiled.schedule.stages)
        registry = ScheduleRegistry(graph_builder=lambda model, bs: load(doc, batch_size=bs))
        assert registry.get("with_unknown", 4, v100).num_stages() > 0


class TestRoundTrips:
    def test_example_transformer_round_trips_fingerprint_stable(self):
        data = json.loads((EXAMPLES / "transformer_block.json").read_text())
        graph = import_onnx(data)
        reloaded = graph_from_dict(graph_to_dict(graph))
        assert graph_fingerprint(reloaded) == graph_fingerprint(graph)
        assert graph_fingerprint(import_onnx(data)) == graph_fingerprint(graph)

    def test_example_file_and_zoo_name_build_the_same_graph(self):
        from_file = load(EXAMPLES / "transformer_block.json")
        from_zoo = load("transformer_block")
        assert graph_fingerprint(from_file) == graph_fingerprint(from_zoo)

    def test_example_transformer_validates_shapes(self):
        graph = load(EXAMPLES / "transformer_block.json")
        rows, hidden = graph.input_shape.batch, graph.input_shape.channels
        assert graph.nodes["scores0"].output_shape.dims() == (rows, rows)
        assert graph.nodes["ln_out"].output_shape.dims() == (rows, hidden)

    def test_rebatching_an_imported_graph_rescales_every_shape(self):
        graph = load(EXAMPLES / "transformer_block.json", batch_size=8)
        assert graph.input_shape.batch == 8
        assert graph.nodes["scores0"].output_shape.dims() == (8, 8)
