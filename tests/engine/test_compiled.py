"""Tests for CompiledModel artifacts: serialization and warm starts."""

from __future__ import annotations

import json

import pytest

from repro.engine import ARTIFACT_FORMAT, CompiledModel, Engine
from repro.models import build_model


@pytest.fixture(scope="module")
def compiled(v100):
    return Engine(v100).compile(build_model("squeezenet", batch_size=2, optimize=False))


class TestRoundTrip:
    def test_save_load_round_trip(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "nested" / "squeezenet.json")
        loaded = CompiledModel.load(path)
        assert loaded.schedule == compiled.schedule
        assert loaded.variant == compiled.variant
        assert loaded.device.name == compiled.device.name
        assert loaded.fingerprint == compiled.fingerprint
        assert loaded.source_fingerprint == compiled.source_fingerprint
        assert list(loaded.graph.nodes) == list(compiled.graph.nodes)
        assert loaded.plan.num_stages() == compiled.plan.num_stages()
        # The loaded artifact executes identically with zero searches.
        assert loaded.search is None
        assert loaded.latency_ms() == pytest.approx(compiled.latency_ms())
        assert loaded.throughput() == pytest.approx(compiled.throughput())

    def test_stats_survive_the_round_trip(self, compiled, tmp_path):
        loaded = CompiledModel.load(compiled.save(tmp_path / "m.json"))
        assert loaded.stats.operators_in == compiled.stats.operators_in
        assert loaded.stats.num_measurements == compiled.stats.num_measurements
        assert [t.stage for t in loaded.stats.stages] == [
            t.stage for t in compiled.stats.stages
        ]

    def test_artifact_is_marked_and_versioned(self, compiled, tmp_path):
        data = json.loads(compiled.save(tmp_path / "m.json").read_text())
        assert CompiledModel.is_artifact(data)
        assert data["format"] == ARTIFACT_FORMAT
        assert data["format_version"] == 1
        assert not CompiledModel.is_artifact(data["schedule"])  # bare schedule doc

    def test_wrong_format_rejected(self, compiled, tmp_path):
        data = compiled.to_dict()
        data["format"] = "something-else"
        with pytest.raises(ValueError, match="artifact"):
            CompiledModel.from_dict(data)
        data = compiled.to_dict()
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            CompiledModel.from_dict(data)

    def test_unknown_profile_requires_explicit_override(self, compiled):
        data = compiled.to_dict()
        data["profile"] = "my-custom-lib"
        with pytest.raises(ValueError, match="kernel profile"):
            CompiledModel.from_dict(data)
        loaded = CompiledModel.from_dict(data, profile=compiled.profile)
        assert loaded.profile is compiled.profile


class TestBlockRecords:
    def test_block_records_round_trip(self, compiled, tmp_path):
        assert compiled.blocks, "a searched compile must carry block records"
        loaded = CompiledModel.load(compiled.save(tmp_path / "m.json"))
        assert [r.as_dict() for r in loaded.blocks] == [
            r.as_dict() for r in compiled.blocks
        ]
        assert all(record.digest for record in loaded.blocks)

    def test_block_records_tile_the_schedule(self, compiled, tmp_path):
        # start/count slices must cover the stage list exactly, in order —
        # this is what makes splicing a prior schedule by record valid.
        loaded = CompiledModel.load(compiled.save(tmp_path / "m.json"))
        cursor = 0
        for record in loaded.blocks:
            assert record.start == cursor
            cursor += record.count
        assert cursor == len(loaded.schedule.stages)

    def test_artifact_without_block_records_still_loads(self, compiled, tmp_path):
        # Artifacts written before block records existed have no "blocks"
        # key (the field was added without a version bump): they must load
        # with an empty record list, not fail.
        data = compiled.to_dict()
        del data["blocks"]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(data))
        loaded = CompiledModel.load(path)
        assert loaded.blocks == []
        assert loaded.schedule == compiled.schedule
        assert loaded.latency_ms() == pytest.approx(compiled.latency_ms())

    def test_loaded_records_enable_incremental_recompiles(self, tmp_path, v100):
        graph = _versioned_graph(head_kernel=1)
        path = Engine(v100).compile(graph).save(tmp_path / "m.json")

        warm = Engine(v100)
        warm.load(path)
        recompiled = warm.compile(_versioned_graph(head_kernel=3))
        # Only the mutated head block is searched; the stem's stages splice
        # straight out of the loaded artifact's records.
        sources = {s.block_name: s.source for s in recompiled.search.block_stats}
        assert sources["stem"] == "spliced"
        assert sources["head"] != "spliced"
        assert warm.stats.blocks_spliced == 1

    def test_legacy_artifact_recompiles_without_splicing(self, tmp_path, v100):
        graph = _versioned_graph(head_kernel=1)
        data = Engine(v100).compile(graph).to_dict()
        del data["blocks"]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(data))

        warm = Engine(v100)
        warm.load(path)
        recompiled = warm.compile(_versioned_graph(head_kernel=3))
        assert warm.stats.blocks_spliced == 0
        assert all(s.source != "spliced" for s in recompiled.search.block_stats)


def _versioned_graph(head_kernel: int):
    """Two-block graph whose head block can be dirtied independently."""
    from repro.ir.graph import GraphBuilder
    from repro.ir.tensor import TensorShape

    builder = GraphBuilder("versioned", TensorShape(1, 8, 8, 8))
    with builder.block("stem"):
        a = builder.conv2d("stem_conv", builder.input_name, 8, 3)
        builder.relu("stem_relu", a)
    with builder.block("head"):
        builder.conv2d("head_conv", "stem_relu", 8, head_kernel)
    return builder.build()


class TestEngineWarmStart:
    def test_engine_load_seeds_the_compile_cache(self, compiled, tmp_path, v100):
        path = compiled.save(tmp_path / "m.json")
        warm = Engine(v100)
        loaded = warm.load(path)
        assert warm.stats.loads == 1
        # Compiling the same source graph now hits the loaded artifact: the
        # warm engine performs zero scheduler searches.
        again = warm.compile(build_model("squeezenet", batch_size=2, optimize=False))
        assert again is loaded
        assert warm.stats.searches == 0
        assert warm.stats.cache_hits == 1

    def test_variant_mismatch_is_rejected(self, compiled, tmp_path, v100):
        path = compiled.save(tmp_path / "m.json")
        with pytest.raises(ValueError, match="variant"):
            Engine(v100, variant="ios-merge").load(path)

    def test_profile_mismatch_is_rejected(self, compiled, tmp_path, v100):
        # A schedule searched under one kernel library's costs must never
        # warm-start an engine compiling with another.
        from repro.hardware.kernel import TVM_AUTOTUNE_PROFILE

        path = compiled.save(tmp_path / "m.json")
        with pytest.raises(ValueError, match="profile"):
            Engine(v100, profile=TVM_AUTOTUNE_PROFILE).load(path)

    def test_device_mismatch_is_rejected(self, compiled, tmp_path, k80):
        # A schedule searched for one device must never warm-start an engine
        # compiling for different hardware.
        path = compiled.save(tmp_path / "m.json")
        with pytest.raises(ValueError, match="device"):
            Engine(k80).load(path)

    def test_loaded_stats_are_marked_unsearched(self, compiled, tmp_path):
        assert compiled.stats.searched
        loaded = CompiledModel.load(compiled.save(tmp_path / "m.json"))
        assert not loaded.stats.searched
        assert "loaded from artifact" in loaded.stats.describe()
