"""Tests for variant-name normalization (the anti-drift satellite)."""

from __future__ import annotations

import pytest

from repro.core import (
    SchedulerConfig,
    UnknownVariantError,
    VALID_VARIANTS,
    normalize_variant,
    variant_label,
)


class TestNormalizeVariant:
    @pytest.mark.parametrize("spelling,expected", [
        ("ios-both", "ios-both"),
        ("ios-parallel", "ios-parallel"),
        ("ios-merge", "ios-merge"),
        ("IOS-Both", "ios-both"),
        ("ios_merge", "ios-merge"),
        ("IOS_PARALLEL", "ios-parallel"),
        ("both", "ios-both"),
        ("merge", "ios-merge"),
        ("parallel", "ios-parallel"),
        ("  ios-both  ", "ios-both"),
    ])
    def test_accepted_spellings(self, spelling, expected):
        assert normalize_variant(spelling) == expected

    @pytest.mark.parametrize("bad", ["ios-quantum", "", "bothh", None, 3])
    def test_bad_input_raises_value_error_listing_variants(self, bad):
        with pytest.raises(ValueError) as excinfo:
            normalize_variant(bad)
        for name in VALID_VARIANTS:
            assert name in str(excinfo.value)

    def test_error_is_also_a_key_error(self):
        # SchedulerConfig.variant historically raised KeyError; both
        # exception idioms must keep working.
        with pytest.raises(KeyError):
            normalize_variant("ios-quantum")
        assert issubclass(UnknownVariantError, ValueError)
        assert issubclass(UnknownVariantError, KeyError)


class TestDriftedConsumersAgree:
    def test_scheduler_config_accepts_drifted_spellings(self):
        assert (
            SchedulerConfig.variant("IOS_Both").strategies
            == SchedulerConfig.variant("ios-both").strategies
        )
        assert variant_label(SchedulerConfig.variant("merge")) == "ios-merge"

    def test_serving_config_normalizes(self):
        from repro.serve import ServingConfig

        config = ServingConfig(model="toy", variant="Both")
        assert config.variant == "ios-both"
        with pytest.raises(ValueError):
            ServingConfig(model="toy", variant="ios-quantum")

    def test_engine_normalizes(self, v100):
        from repro.engine import Engine

        assert Engine(v100, variant="MERGE").variant == "ios-merge"
        with pytest.raises(ValueError):
            Engine(v100, variant="nope")

    def test_cli_rejects_bad_variant_with_a_clean_error(self, capsys):
        from repro.experiments.cli import serve_main

        with pytest.raises(SystemExit):
            serve_main(["--variant", "ios-quantum", "--requests", "1"])
        err = capsys.readouterr().err
        assert "valid variants" in err

    def test_cli_accepts_drifted_variant(self, tmp_path, capsys):
        from repro.experiments.cli import serve_main

        assert serve_main([
            "--model", "squeezenet", "--variant", "Both", "--requests", "5",
            "--batch-sizes", "1,2", "--num-workers", "1",
            "--registry-dir", str(tmp_path),
        ]) == 0
        # The persisted key uses the canonical name.
        assert list((tmp_path / "squeezenet").glob("v100__ios-both__*.json"))
