"""Schedule-equivalence harness for the fast compile paths.

The compile-speed work (memoization, incremental recompilation, parallel
block search, cost-model caching) is only admissible because every fast path
produces *bit-identical* schedules to a plain serial DP search.  These
property tests pin that invariant down:

* memoized and block-cached searches match a from-scratch serial search on
  every zoo model tested and on 50 seeded random DAGs;
* the multiprocessing fan-out (``jobs > 1``) matches the serial path;
* the engine's incremental recompilation re-searches only dirty blocks and
  splices the rest, and the spliced result equals a cold compile of the
  mutated graph;
* the group decomposition the ending enumeration hands the cost model equals
  ``connected_groups`` — the ordering contract the whole pricing path
  relies on.

Equality is checked at the bit level: stage operator tuples, strategies, and
the ``repr`` of every per-block latency (``repr`` round-trips floats, so two
equal reprs mean identical doubles).
"""

from __future__ import annotations

import pytest

from repro.core import (
    BlockIndex,
    FlopsCostModel,
    IOSScheduler,
    PruningStrategy,
    SchedulerConfig,
    clear_schedule_memo,
    connected_groups,
    enumerate_endings,
    groups_of_mask,
)
from repro.engine import Engine
from repro.ir.graph import GraphBuilder
from repro.ir.tensor import TensorShape
from repro.frontend import load

SEEDS = range(50)
ZOO_MODELS = ["squeezenet", "resnet_18", "vgg_16"]


def _cost_model():
    return FlopsCostModel(flops_per_ms=1e9, overhead_ms=0.01)


def _plain_scheduler():
    """A scheduler with every reuse path off: the ground-truth serial search."""
    return IOSScheduler(_cost_model(), SchedulerConfig(reuse_identical_blocks=False))


def _fast_scheduler():
    """A scheduler with the block cache and process-wide memo enabled."""
    return IOSScheduler(_cost_model(), SchedulerConfig())


def stage_signature(schedule):
    """The byte-level identity of a schedule: operators + strategy per stage."""
    return tuple((stage.operators, stage.strategy.value) for stage in schedule.stages)


def latency_signature(result):
    """Exact per-block DP optima; ``repr`` equality means identical doubles."""
    return tuple(repr(stats.optimized_latency_ms) for stats in result.block_stats)


def assert_results_identical(expected, actual):
    assert stage_signature(actual.schedule) == stage_signature(expected.schedule)
    assert latency_signature(actual) == latency_signature(expected)


class TestMemoizedEqualsSerial:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_graphs(self, seed, random_graph_factory):
        graph = random_graph_factory(seed)
        plain = _plain_scheduler().optimize_graph(graph)

        clear_schedule_memo()
        warm = _fast_scheduler().optimize_graph(graph)
        assert_results_identical(plain, warm)

        # A *fresh* scheduler instance now hits the process-wide memo: no
        # block may fall back to a search, and the result is still identical.
        hit = _fast_scheduler().optimize_graph(graph)
        assert_results_identical(plain, hit)
        assert not any(
            stats.source in ("search", "parallel") for stats in hit.block_stats
        )

    @pytest.mark.parametrize("model", ZOO_MODELS)
    def test_zoo_models(self, model):
        graph = load(model)
        plain = _plain_scheduler().optimize_graph(graph)

        clear_schedule_memo()
        warm = _fast_scheduler().optimize_graph(graph)
        assert_results_identical(plain, warm)

        hit = _fast_scheduler().optimize_graph(graph)
        assert_results_identical(plain, hit)
        assert not any(
            stats.source in ("search", "parallel") for stats in hit.block_stats
        )

    @pytest.mark.parametrize("seed", [3, 17])
    def test_disabling_the_memo_changes_nothing_but_the_source(
        self, seed, random_graph_factory, monkeypatch
    ):
        graph = random_graph_factory(seed)
        _fast_scheduler().optimize_graph(graph)  # populate the memo

        monkeypatch.setenv("REPRO_SCHEDULE_MEMO", "0")
        cold = _fast_scheduler().optimize_graph(graph)
        assert not any(stats.source == "memo" for stats in cold.block_stats)

        monkeypatch.setenv("REPRO_SCHEDULE_MEMO", "1")
        hot = _fast_scheduler().optimize_graph(graph)
        assert_results_identical(cold, hot)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs(self, seed, random_graph_factory):
        graph = random_graph_factory(seed)
        serial = _plain_scheduler().optimize_graph(graph, jobs=1)

        clear_schedule_memo()
        fanout = _fast_scheduler().optimize_graph(graph, jobs=2)
        assert_results_identical(serial, fanout)

    def test_zoo_model(self):
        graph = load("squeezenet")
        serial = _plain_scheduler().optimize_graph(graph, jobs=1)

        clear_schedule_memo()
        fanout = _fast_scheduler().optimize_graph(graph, jobs=2)
        assert_results_identical(serial, fanout)


def _two_block_graph(stem_kernel=3, head_kernel=1, name="incr-model"):
    """Two explicit blocks; either block can be dirtied independently."""
    builder = GraphBuilder(name, TensorShape(1, 8, 8, 8))
    with builder.block("stem"):
        a = builder.conv2d("stem_conv", builder.input_name, 8, stem_kernel)
        b = builder.relu("stem_relu", a)
    with builder.block("head"):
        c = builder.conv2d("head_conv", b, 8, head_kernel)
        d = builder.conv2d("head_conv2", b, 8, head_kernel)
        builder.add("head_add", [c, d])
    return builder.build()


def _flops_engine():
    return Engine("v100", scheduler=IOSScheduler(_cost_model(), SchedulerConfig()))


class TestIncrementalRecompilation:
    def test_only_the_dirty_block_is_researched(self):
        engine = _flops_engine()
        engine.compile(_two_block_graph(head_kernel=1))
        searched_before = engine.stats.block_searches

        clear_schedule_memo()  # force the dirty block to a real search
        second = engine.compile(_two_block_graph(head_kernel=3))
        assert engine.stats.blocks_spliced == 1
        assert engine.stats.block_searches == searched_before + 1
        sources = {s.block_name: s.source for s in second.search.block_stats}
        assert sources["stem"] == "spliced"
        assert sources["head"] in ("search", "parallel")

    def test_upstream_mutation_still_splices_the_clean_downstream_block(self):
        # The stem's kernel changes but its boundary shapes do not, so the
        # head's digest is unchanged and its stages splice over verbatim.
        engine = _flops_engine()
        engine.compile(_two_block_graph(stem_kernel=3))

        clear_schedule_memo()
        second = engine.compile(_two_block_graph(stem_kernel=1))
        sources = {s.block_name: s.source for s in second.search.block_stats}
        assert sources["stem"] in ("search", "parallel")
        assert sources["head"] == "spliced"

    def test_incremental_compile_equals_a_cold_compile(self):
        engine = _flops_engine()
        engine.compile(_two_block_graph(head_kernel=1))
        incremental = engine.compile(_two_block_graph(head_kernel=3))
        assert engine.stats.blocks_spliced == 1

        clear_schedule_memo()
        cold = _flops_engine().compile(_two_block_graph(head_kernel=3))
        assert stage_signature(incremental.schedule) == stage_signature(cold.schedule)
        assert latency_signature(incremental.search) == latency_signature(cold.search)
        assert repr(incremental.latency_ms()) == repr(cold.latency_ms())

    @pytest.mark.parametrize("seed", [5, 23, 41])
    def test_recompiling_an_identical_random_graph_splices_every_block(
        self, seed, random_graph_factory
    ):
        engine = _flops_engine()
        first = engine.compile(random_graph_factory(seed))
        second = engine.compile(random_graph_factory(seed), use_cache=True)
        if second is first:  # whole-model cache hit: also a valid fast path
            assert engine.stats.cache_hits >= 1
            return
        assert all(s.source in ("spliced", "empty") for s in second.search.block_stats)
        assert_results_identical(first.search, second.search)


class TestImportedGraphs:
    """Frontend-imported graphs go through the same fast paths as zoo models:
    memoized, parallel and incremental searches must stay bit-identical."""

    def _transformer(self, heads=2):
        from pathlib import Path

        from repro.frontend import load

        examples = Path(__file__).resolve().parents[2] / "examples"
        if heads == 2:
            return load(examples / "transformer_block.json")
        from repro.models import transformer_block

        return transformer_block(heads=heads)

    def test_memoized_equals_serial_on_the_imported_transformer(self):
        graph = self._transformer()
        plain = _plain_scheduler().optimize_graph(graph)

        clear_schedule_memo()
        warm = _fast_scheduler().optimize_graph(graph)
        assert_results_identical(plain, warm)

        hit = _fast_scheduler().optimize_graph(graph)
        assert_results_identical(plain, hit)
        assert not any(
            stats.source in ("search", "parallel") for stats in hit.block_stats
        )

    def test_parallel_equals_serial_on_the_imported_transformer(self):
        graph = self._transformer()
        serial = _plain_scheduler().optimize_graph(graph, jobs=1)

        clear_schedule_memo()
        fanout = _fast_scheduler().optimize_graph(graph, jobs=2)
        assert_results_identical(serial, fanout)

    def test_head_count_change_only_researches_dirty_blocks(self):
        # Going from 2 to 4 heads rewrites the qkv/attention/merge blocks but
        # leaves the ffn block (same boundary shapes) spliceable.
        engine = _flops_engine()
        engine.compile(self._transformer(heads=2))
        clear_schedule_memo()
        second = engine.compile(self._transformer(heads=4))
        sources = {s.block_name: s.source for s in second.search.block_stats}
        assert sources["ffn"] == "spliced"
        assert sources["attention"] in ("search", "parallel")

        clear_schedule_memo()
        cold = _flops_engine().compile(self._transformer(heads=4))
        assert stage_signature(second.schedule) == stage_signature(cold.schedule)


class TestGroupDecomposition:
    """The DP's group masks must equal ``connected_groups`` exactly."""

    @pytest.mark.parametrize("seed", range(10))
    def test_enumerated_groups_match_connected_groups(self, seed, random_graph_factory):
        graph = random_graph_factory(seed)
        pruning = PruningStrategy(max_group_size=3, max_groups=8)
        for block in graph.blocks:
            names = graph.schedulable_names(block)
            if not names:
                continue
            index = BlockIndex(graph, names)
            for ending, group_masks in enumerate_endings(
                index, index.full_mask, pruning
            ):
                expected = connected_groups(graph, index.names_of(ending))
                assert [list(index.names_of(m)) for m in group_masks] == expected
                assert group_masks == groups_of_mask(index, ending)
