"""Tests for the staged compile pipeline (repro.engine.Engine)."""

from __future__ import annotations

import warnings

import pytest

from repro.core import IOSScheduler, PruningStrategy, SchedulerConfig, SimulatedCostModel
from repro.core import schedule_graph
from repro.engine import Engine, clear_engine_pool, get_engine
from repro.models import build_model, figure2_block
from repro.passes import unfuse_activations


class TestStagedCompile:
    def test_compile_produces_all_artifacts(self, v100, fig2):
        compiled = Engine(v100).compile(fig2)
        assert compiled.graph is fig2
        compiled.schedule.validate(fig2)
        assert compiled.plan.num_stages() == len(compiled.schedule)
        assert compiled.latency_ms() > 0
        assert compiled.throughput() > 0
        assert compiled.search is not None
        assert compiled.search.schedule is compiled.schedule

    def test_per_stage_stats_are_recorded(self, v100, fig2):
        compiled = Engine(v100).compile(fig2)
        stats = compiled.stats
        assert [t.stage for t in stats.stages] == ["passes", "schedule", "lower"]
        assert all(t.elapsed_s >= 0 for t in stats.stages)
        assert stats.stage("schedule").detail["measurements"] == stats.num_measurements
        assert stats.num_measurements > 0
        assert stats.profiling_gpu_ms > 0
        assert stats.operators_in == stats.operators_out == len(fig2.schedulable_names())
        assert stats.elapsed_s == pytest.approx(sum(t.elapsed_s for t in stats.stages))
        assert "schedule" in stats.describe()

    def test_pass_stage_rewrites_before_search(self, v100):
        raw = unfuse_activations(build_model("squeezenet", optimize=False))
        compiled = Engine(v100, passes=True).compile(raw)
        assert compiled.graph is not raw
        assert compiled.stats.operators_out < compiled.stats.operators_in
        assert compiled.stats.stage("passes").detail["rewrites"] > 0
        assert compiled.search.pass_stats is not None
        assert compiled.fingerprint != compiled.source_fingerprint
        compiled.schedule.validate(compiled.graph)

    def test_execute_with_profile_records_a_trace(self, v100, fig2):
        compiled = Engine(v100).compile(fig2)
        plain = compiled.execute()
        traced = compiled.execute(profile=True)
        assert traced.latency_ms == pytest.approx(plain.latency_ms)
        assert traced.timeline()  # the occupancy trace is only kept when profiling
        assert not plain.timeline()

    def test_config_and_variant_are_mutually_exclusive(self, v100):
        with pytest.raises(ValueError, match="not both"):
            Engine(v100, config=SchedulerConfig(), variant="ios-merge")
        with pytest.raises(ValueError, match="not both"):
            Engine(
                v100,
                scheduler=IOSScheduler(SimulatedCostModel(v100)),
                pruning=PruningStrategy(2, 4),
            )


class TestCompileCache:
    def test_cache_hit_returns_the_same_compiled_model(self, v100, fig2):
        engine = Engine(v100)
        first = engine.compile(fig2)
        second = engine.compile(fig2)
        assert second is first
        assert engine.stats.compiles == 1
        assert engine.stats.cache_hits == 1
        assert engine.stats.searches == 1

    def test_structurally_identical_graph_hits_the_cache(self, v100):
        engine = Engine(v100)
        first = engine.compile(figure2_block())
        second = engine.compile(figure2_block())  # fresh but identical object
        assert second is first
        assert engine.stats.searches == 1

    def test_different_batch_size_misses(self, v100):
        engine = Engine(v100)
        engine.compile(build_model("squeezenet", batch_size=1))
        engine.compile(build_model("squeezenet", batch_size=2))
        assert engine.stats.searches == 2

    def test_use_cache_false_bypasses(self, v100, fig2):
        engine = Engine(v100)
        first = engine.compile(fig2, use_cache=False)
        second = engine.compile(fig2, use_cache=False)
        assert second is not first
        assert engine.stats.cache_hits == 0
        assert second.schedule == first.schedule

    def test_engine_pool_shares_engines_per_environment(self, v100):
        clear_engine_pool()
        try:
            a = get_engine("v100")
            b = get_engine(v100)
            assert a is b
            assert get_engine("v100", variant="ios-merge") is not a
            assert get_engine("k80") is not a
        finally:
            clear_engine_pool()

    def test_engine_pool_distinguishes_tweaked_presets(self, v100):
        # A customised device that keeps a preset's name must get its own
        # engine: the cost model depends on the spec, not the label.
        clear_engine_pool()
        try:
            tweaked = v100.scaled(num_sms=v100.num_sms // 2)
            assert tweaked.name == v100.name
            assert get_engine(tweaked) is not get_engine(v100)
        finally:
            clear_engine_pool()


class TestShimEquivalence:
    """Engine.compile must reproduce the legacy schedule_graph() results."""

    @pytest.mark.parametrize("model", ["squeezenet", "inception_v3"])
    def test_engine_matches_legacy_schedule_graph_on_the_zoo(self, model, v100):
        graph = build_model(model, optimize=False)
        with pytest.warns(DeprecationWarning, match="schedule_graph"):
            legacy = schedule_graph(graph, v100)
        compiled = Engine(v100).compile(graph)
        assert compiled.schedule == legacy.schedule
        assert compiled.search.predicted_latency_ms == pytest.approx(
            legacy.predicted_latency_ms
        )

    def test_equivalence_with_passes_and_variant(self, v100):
        raw = unfuse_activations(build_model("squeezenet", optimize=False))
        with pytest.warns(DeprecationWarning):
            legacy = schedule_graph(raw, v100, passes=True, variant="ios-merge")
        compiled = Engine(v100, passes=True, variant="ios-merge").compile(raw)
        assert compiled.schedule == legacy.schedule
        assert list(compiled.graph.nodes) == list(legacy.graph.nodes)

    def test_optimize_graph_passes_kwarg_warns_and_matches(self, v100):
        raw = unfuse_activations(build_model("squeezenet", optimize=False))
        scheduler = IOSScheduler(SimulatedCostModel(v100))
        with pytest.warns(DeprecationWarning, match="passes"):
            legacy = scheduler.optimize_graph(raw, passes=True)
        compiled = Engine(v100, passes=True).compile(raw)
        assert compiled.schedule == legacy.schedule

    def test_plain_optimize_graph_does_not_warn(self, v100, fig2):
        scheduler = IOSScheduler(SimulatedCostModel(v100))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            scheduler.optimize_graph(fig2)
