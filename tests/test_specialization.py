"""Unit tests for schedule specialisation (Table 3 machinery)."""

from __future__ import annotations

import pytest

from repro.core import specialize_for_batch_sizes, specialize_for_devices
from repro.core.specialization import SpecializationMatrix
from repro.models import figure2_block


class TestSpecializationMatrix:
    def test_diagonal_is_best_detection(self):
        matrix = SpecializationMatrix(
            execute_labels=["1", "32"],
            optimize_labels=["1", "32"],
            latency_ms=[[1.0, 1.2], [5.5, 5.0]],
        )
        assert matrix.diagonal_is_best()
        matrix.latency_ms[0] = [1.2, 1.0]
        assert not matrix.diagonal_is_best()

    def test_row_and_rows_export(self):
        matrix = SpecializationMatrix(
            execute_labels=["a", "b"],
            optimize_labels=["a", "b"],
            latency_ms=[[1.0, 2.0], [3.0, 4.0]],
        )
        assert matrix.row("b") == [3.0, 4.0]
        rows = matrix.as_rows()
        assert rows[0]["execute_on"] == "a"
        assert rows[1]["optimized_for_b"] == 4.0


class TestBatchSpecialization:
    def test_cross_matrix_shape_and_schedules(self, v100):
        graph = figure2_block()
        schedules, matrix = specialize_for_batch_sizes(graph, [1, 16], v100)
        assert set(schedules) == {1, 16}
        assert len(matrix.latency_ms) == 2 and len(matrix.latency_ms[0]) == 2
        # Larger batch always takes longer regardless of which schedule is used.
        assert matrix.latency_ms[1][0] > matrix.latency_ms[0][0]
        for bs, schedule in schedules.items():
            schedule.validate(graph.with_batch_size(bs))

    def test_specialized_schedule_never_loses_on_its_own_batch(self, v100):
        graph = figure2_block()
        _, matrix = specialize_for_batch_sizes(graph, [1, 32], v100)
        for i in range(2):
            assert matrix.latency_ms[i][i] == pytest.approx(min(matrix.latency_ms[i]), rel=1e-6)


class TestDeviceSpecialization:
    def test_cross_matrix_devices(self, v100, k80):
        graph = figure2_block()
        schedules, matrix = specialize_for_devices(graph, [k80, v100])
        assert set(schedules) == {"k80", "v100"}
        # The K80 row is slower than the V100 row under every schedule.
        assert min(matrix.latency_ms[0]) > max(matrix.latency_ms[1])
        # Diagonal (specialised) entries are the best of their rows.
        for i in range(2):
            assert matrix.latency_ms[i][i] == pytest.approx(min(matrix.latency_ms[i]), rel=1e-6)
