"""Docs can't rot: link check and snippet syntax in tier-1.

The CI docs job additionally *executes* every fenced Python snippet
(``tools/check_docs.py`` with no flags); here we keep the fast guarantees —
pages exist, are linked from the README, contain no dead relative links, and
every snippet at least parses — in the default test run.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves the defining module through sys.modules, so the
    # registration must happen before execution.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


checker = load_checker()


class TestDocsSite:
    def test_docs_pages_exist(self):
        pages = sorted(p.name for p in (REPO_ROOT / "docs").glob("*.md"))
        assert {"architecture.md", "engine.md", "serving.md", "faq.md"} <= set(pages)
        assert len(pages) >= 4

    def test_readme_links_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for page in (REPO_ROOT / "docs").glob("*.md"):
            assert f"docs/{page.name}" in readme, (
                f"README.md does not link docs/{page.name}"
            )

    def test_no_dead_relative_links(self):
        assert checker.check_links(checker.doc_files()) == []

    def test_every_python_snippet_parses(self):
        assert checker.check_snippets(checker.doc_files(), compile_only=True) == []

    def test_docs_have_executable_snippets(self):
        # The CI docs job is only meaningful if there is something to run.
        runnable = [
            snippet
            for path in checker.doc_files()
            for snippet in checker.python_snippets(path)
            if not snippet.skip
        ]
        assert len(runnable) >= 5

    def test_skip_marker_is_honoured(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "# t\n\n<!-- docs: no-run -->\n```python\nraise RuntimeError('boom')\n```\n"
        )
        assert checker.check_snippets([page]) == []

    def test_snippet_failures_are_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# t\n\n```python\nraise RuntimeError('boom')\n```\n")
        failures = checker.check_snippets([page])
        assert len(failures) == 1 and "boom" in failures[0]

    def test_dead_links_are_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](does-not-exist.md) and [ok](page.md)\n")
        failures = checker.check_links([page])
        assert len(failures) == 1 and "does-not-exist.md" in failures[0]
