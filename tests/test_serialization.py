"""Tests for ir/serialization.py: JSON round-trips of computation graphs."""

from __future__ import annotations

import json

import pytest

from repro.ir import (
    Conv2d,
    GraphBuilder,
    SeparableConv2d,
    TensorShape,
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.ir.serialization import FORMAT_VERSION
from repro.models import build_model
from repro.passes import unfuse_activations


def fused_blocks_graph():
    """Two explicit blocks exercising every fused-activation field."""
    b = GraphBuilder("fused", TensorShape(2, 3, 16, 16))
    with b.block("features"):
        x = b.conv2d("conv", b.input_name, out_channels=8, kernel=3)  # fused relu
        x = b.sep_conv2d("sep", x, out_channels=8, kernel=3, pre_activation=True)
        x = b.max_pool("pool", x, kernel=2)
    with b.block("classifier"):
        x = b.flatten("flat", x)
        b.linear("fc", x, out_features=10, activation="relu")
    return b.build()


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        graph = fused_blocks_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.name == graph.name
        assert list(rebuilt.nodes) == list(graph.nodes)
        assert [b.name for b in rebuilt.blocks] == [b.name for b in graph.blocks]
        assert [list(b) for b in rebuilt.blocks] == [list(b) for b in graph.blocks]
        assert rebuilt.edges() == graph.edges()
        assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)

    def test_round_trip_preserves_fused_activations(self):
        rebuilt = graph_from_dict(graph_to_dict(fused_blocks_graph()))
        conv = rebuilt.nodes["conv"]
        assert isinstance(conv, Conv2d) and conv.activation == "relu"
        sep = rebuilt.nodes["sep"]
        assert isinstance(sep, SeparableConv2d) and sep.pre_activation
        assert rebuilt.nodes["fc"].activation == "relu"

    def test_round_trip_preserves_unfused_form(self):
        # The raw (standalone-Relu) form must round-trip too — fusion is the
        # pass pipeline's job, never the serialiser's.
        raw = unfuse_activations(fused_blocks_graph())
        rebuilt = graph_from_dict(graph_to_dict(raw))
        assert rebuilt.nodes["conv"].activation is None
        assert rebuilt.nodes["conv__act"].kind == "relu"
        assert not rebuilt.nodes["sep"].pre_activation
        assert graph_fingerprint(rebuilt) == graph_fingerprint(raw)

    def test_round_trip_rebinds_shapes(self):
        graph = fused_blocks_graph()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        for name, op in graph.nodes.items():
            assert rebuilt.nodes[name].output_shape == op.output_shape
        assert rebuilt.total_flops() == graph.total_flops()
        assert rebuilt.total_params() == graph.total_params()

    def test_file_round_trip(self, tmp_path):
        graph = fused_blocks_graph()
        path = save_graph(graph, tmp_path / "nested" / "graph.json")
        assert path.exists()
        loaded = load_graph(path)
        assert graph_fingerprint(loaded) == graph_fingerprint(graph)
        # The file is plain, diffable JSON with the version stamped.
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION

    def test_model_zoo_round_trip(self):
        graph = build_model("squeezenet", optimize=False)
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)
        assert len(rebuilt.schedulable_names()) == len(graph.schedulable_names())


class TestFailureModes:
    def test_unsupported_format_version(self):
        data = graph_to_dict(fused_blocks_graph())
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported graph format version"):
            graph_from_dict(data)

    def test_unknown_operator_kind_lists_known_kinds(self):
        data = graph_to_dict(fused_blocks_graph())
        data["nodes"][1]["kind"] = "conv3d"
        with pytest.raises(KeyError) as excinfo:
            graph_from_dict(data)
        message = str(excinfo.value)
        assert "conv3d" in message
        assert "known kinds" in message
        assert "conv2d" in message and "sep_conv2d" in message
        assert "register_operator" in message

    def test_invalid_graph_is_rejected_on_load(self):
        data = graph_to_dict(fused_blocks_graph())
        # Drop a node from its block: the deserialiser must re-validate.
        data["blocks"][0]["nodes"].remove("pool")
        from repro.ir import GraphValidationError

        with pytest.raises(GraphValidationError, match="does not belong to any block"):
            graph_from_dict(data)
