"""End-to-end cluster serving: golden equivalence, determinism, behavior."""

from __future__ import annotations

import itertools

import pytest

from repro.cluster import ClusterConfig, HostSpec, LinkModel, run_cluster_serving
from repro.core import clear_schedule_memo
from repro.obs import Tracer, chrome_trace_json, default_alert_rules
from repro.serve import BatchPolicy, ServingConfig, TrafficConfig
from repro.serve.experiment import run_serving


def traffic(**overrides) -> TrafficConfig:
    base = dict(
        model="squeezenet",
        pattern="bursty",
        num_requests=48,
        rate_rps=150.0,
        burst_size=8,
        slo_ms=120.0,
        seed=5,
    )
    base.update(overrides)
    return TrafficConfig(**base)


def serving(**overrides) -> ServingConfig:
    base = dict(
        model="squeezenet",
        devices=("k80",),
        batch_sizes=(1, 2, 4),
        policy=BatchPolicy(max_batch_size=4, max_wait_ms=3.0),
    )
    base.update(overrides)
    return ServingConfig(**base)


def counter_tracer() -> Tracer:
    ticks = itertools.count()
    return Tracer(clock=lambda: float(next(ticks)))


class TestGoldenEquivalence:
    """``--cluster 1`` must reproduce the single-host loop byte for byte."""

    def test_report_is_byte_identical(self):
        single = run_serving(traffic(), serving())
        cluster = run_cluster_serving(
            traffic(), ClusterConfig(serving=serving(), num_hosts=1)
        )
        assert cluster.describe() == single.describe()
        assert cluster.report.records == single.records

    def test_report_is_byte_identical_under_admission_and_fleet(self):
        config = serving(
            devices=("v100",), fleet="k80:1,v100:1", admission="deadline"
        )
        single = run_serving(traffic(), config)
        cluster = run_cluster_serving(
            traffic(), ClusterConfig(serving=config, num_hosts=1)
        )
        assert cluster.describe() == single.describe()

    def test_trace_is_byte_identical(self):
        a, b = counter_tracer(), counter_tracer()
        run_serving(traffic(), serving(), tracer=a)
        # The process-wide schedule memo would let the second run reuse the
        # first run's block searches — an intended speedup, but it changes
        # the compile span's search counters.  Clear it so both runs compile
        # cold and the comparison isolates the cluster topology.
        clear_schedule_memo()
        run_cluster_serving(
            traffic(), ClusterConfig(serving=serving(), num_hosts=1), tracer=b
        )
        assert chrome_trace_json(a) == chrome_trace_json(b)


class TestDeterminism:
    """Same seed, same config → byte-identical outputs, run to run."""

    def _run(self, **cluster_overrides):
        # Cold-compile every run: memo hits from a previous run would show
        # up in the compile spans and mask true non-determinism.
        clear_schedule_memo()
        config = ClusterConfig(
            serving=serving(), num_hosts=4, **cluster_overrides
        )
        tracer = counter_tracer()
        report = run_cluster_serving(traffic(), config, tracer=tracer)
        return report.describe(), chrome_trace_json(tracer)

    def test_replicated_run_is_deterministic(self):
        assert self._run() == self._run()

    def test_partitioned_run_is_deterministic(self):
        kwargs = dict(partition=True, router="partition-affinity")
        assert self._run(**kwargs) == self._run(**kwargs)


class TestReplicatedCluster:
    def test_every_request_served_exactly_once(self):
        report = run_cluster_serving(
            traffic(), ClusterConfig(serving=serving(), num_hosts=3)
        )
        ids = sorted(r.request.request_id for r in report.report.records)
        assert ids == list(range(48))
        assert sum(report.routed.values()) == 48
        assert sum(len(r) for r in report.records_by_host.values()) == 48

    def test_describe_adds_cluster_and_host_rows(self):
        report = run_cluster_serving(
            traffic(), ClusterConfig(serving=serving(), num_hosts=2)
        )
        text = report.describe()
        assert "cluster   : 2 hosts" in text
        assert "host0" in text and "host1" in text

    def test_memory_bounds_filter_routing(self):
        # squeezenet carries ~5 MB of weights: only host 0 can hold it.
        report = run_cluster_serving(
            traffic(),
            ClusterConfig(
                serving=serving(),
                num_hosts=3,
                host_memory_gb=(1.0, 1e-3, 1e-3),
            ),
        )
        assert set(report.routed) == {0}

    def test_no_fitting_host_raises(self):
        with pytest.raises(ValueError, match="no host can hold"):
            run_cluster_serving(
                traffic(),
                ClusterConfig(serving=serving(), num_hosts=2, host_memory_gb=1e-3),
            )

    def test_ingress_serialisation_delays_deliveries(self):
        # A very slow ingress NIC turns client deliveries into modeled
        # transfers and pushes completions later than the instant-delivery run.
        instant = run_cluster_serving(
            traffic(), ClusterConfig(serving=serving(), num_hosts=1)
        )
        slow = run_cluster_serving(
            traffic(),
            ClusterConfig(
                serving=serving(),
                num_hosts=1,
                link=LinkModel(ingress_gb_s=0.01),
            ),
        )
        assert slow.transfers.count == 48
        assert (
            slow.report.latency.mean_ms > instant.report.latency.mean_ms
        )

    def test_per_host_alerts_are_isolated_and_renamed(self):
        report = run_cluster_serving(
            traffic(num_requests=64, rate_rps=2000.0),
            ClusterConfig(serving=serving(), num_hosts=2),
            alerts=default_alert_rules(slo_ms=120.0, queue_limit=4.0),
        )
        names = {event.rule for event in report.report.alerts}
        assert names, "the overload burst should trip at least one alert"
        assert all(name.startswith(("host0-", "host1-")) for name in names)


class TestPartitionedCluster:
    @pytest.fixture(scope="class")
    def report(self):
        return run_cluster_serving(
            traffic(),
            ClusterConfig(
                serving=serving(),
                num_hosts=3,
                partition=True,
                router="partition-affinity",
            ),
        )

    def test_one_transfer_per_stage_boundary(self, report):
        assert report.plan is not None
        assert report.transfers.count == 48 * (report.plan.num_stages - 1)
        assert report.transfers.total_ms > 0

    def test_end_to_end_records_against_original_requests(self, report):
        ids = sorted(r.request.request_id for r in report.report.records)
        assert ids == list(range(48))
        for record in report.report.records:
            assert record.request.model == "squeezenet"
            # End-to-end latency spans all stages plus transfers.
            assert record.completion_ms > record.request.arrival_ms

    def test_final_stage_host_owns_the_e2e_records(self, report):
        final_host = report.plan.host_of_stage(report.plan.num_stages - 1)
        assert set(report.records_by_host) >= {final_host}
        assert len(report.records_by_host[final_host]) == 48

    def test_intermediate_hosts_report_stage_work(self, report):
        entry_host = report.plan.host_of_stage(0)
        stage_report = report.host_reports[entry_host]
        assert stage_report is not None
        assert stage_report.num_requests == 48
        text = report.describe()
        assert "stage requests" in text
        assert "partition of 'squeezenet'" in text

    def test_transfer_spans_land_on_host_link_tracks(self):
        tracer = counter_tracer()
        run_cluster_serving(
            traffic(),
            ClusterConfig(serving=serving(), num_hosts=2, partition=True),
            tracer=tracer,
        )
        tracks = {record.track for record in tracer.records}
        assert "host0 link/send" in tracks
        assert "host1 link/recv" in tracks
        transfer_spans = [
            record
            for record in tracer.records
            if getattr(record, "category", None) == "transfer"
        ]
        assert transfer_spans


class TestClusterConfig:
    def test_host_fleet_count_must_match(self):
        with pytest.raises(ValueError, match="2 entries"):
            ClusterConfig(
                serving=serving(), num_hosts=3, host_fleets=("k80:1", "v100:1")
            )

    def test_memory_scalar_broadcasts(self):
        config = ClusterConfig(serving=serving(), num_hosts=3, host_memory_gb=2.0)
        assert config.host_memory_gb == (2.0, 2.0, 2.0)
        assert all(spec.memory_gb == 2.0 for spec in config.host_specs())

    def test_router_names_resolve_eagerly(self):
        with pytest.raises(ValueError, match="unknown cluster router"):
            ClusterConfig(serving=serving(), router="nope")

    def test_link_spec_strings_parse(self):
        config = ClusterConfig(serving=serving(), link="bw=5,lat=0.2")
        assert config.link == LinkModel(bandwidth_gb_s=5.0, latency_ms=0.2)

    def test_num_hosts_must_be_positive(self):
        with pytest.raises(ValueError, match="num_hosts"):
            ClusterConfig(serving=serving(), num_hosts=0)

    def test_host_specs_describe_the_fleet(self):
        config = ClusterConfig(
            serving=serving(), num_hosts=2, host_fleets=("k80:2", "v100:1")
        )
        specs = config.host_specs()
        assert [spec.fleet.describe() for spec in specs] == ["k80:2", "v100:1"]
        assert isinstance(specs[0], HostSpec)

    def test_registry_conflicts_with_partitioning(self):
        from repro.serve import ScheduleRegistry

        with pytest.raises(ValueError, match="registry"):
            run_cluster_serving(
                traffic(),
                ClusterConfig(serving=serving(), num_hosts=2, partition=True),
                registry=ScheduleRegistry(),
            )
