"""Tests for the inter-host link-cost model."""

from __future__ import annotations

import pytest

from repro.cluster import LinkModel


class TestLinkModel:
    def test_transfer_cost_is_latency_plus_serialisation(self):
        link = LinkModel(bandwidth_gb_s=10.0, latency_ms=0.1)
        # 10 GB/s == 1e7 bytes/ms: 5 MB takes 0.5 ms on the wire.
        assert link.transfer_ms(5_000_000, 0, 1) == pytest.approx(0.6)

    def test_same_host_transfers_are_free(self):
        link = LinkModel()
        assert link.transfer_ms(1_000_000, 2, 2) == 0.0

    def test_pair_overrides_beat_the_default(self):
        link = LinkModel(
            bandwidth_gb_s=10.0,
            latency_ms=0.1,
            pair_overrides={(0, 1): (1.0, 1.0)},
        )
        assert link.transfer_ms(1_000_000, 0, 1) == pytest.approx(2.0)
        # The override is for the ordered pair; the reverse uses defaults.
        assert link.transfer_ms(1_000_000, 1, 0) == pytest.approx(0.2)

    def test_ingress_disabled_by_default(self):
        link = LinkModel()
        assert not link.models_ingress
        assert link.ingress_ms(1_000_000) == 0.0

    def test_ingress_cost_when_enabled(self):
        link = LinkModel(ingress_gb_s=1.0, ingress_latency_ms=0.5)
        assert link.models_ingress
        assert link.ingress_ms(1_000_000) == pytest.approx(1.5)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(bandwidth_gb_s=0.0),
            dict(bandwidth_gb_s=-1.0),
            dict(latency_ms=-0.1),
            dict(ingress_gb_s=0.0),
            dict(ingress_latency_ms=-1.0),
        ],
    )
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            LinkModel(**bad)

    def test_parse_round_trips_the_cli_spelling(self):
        link = LinkModel.parse("bw=10,lat=0.2,ingress=2,ingress-lat=0.1")
        assert link == LinkModel(
            bandwidth_gb_s=10.0,
            latency_ms=0.2,
            ingress_gb_s=2.0,
            ingress_latency_ms=0.1,
        )

    def test_parse_empty_spec_is_the_default(self):
        assert LinkModel.parse("") == LinkModel()

    @pytest.mark.parametrize("bad", ["bw", "speed=10", "bw=fast", "=1"])
    def test_parse_rejects_malformed_entries(self, bad):
        with pytest.raises(ValueError, match=repr(bad)):
            LinkModel.parse(bad)

    def test_describe_mentions_ingress_only_when_modeled(self):
        assert LinkModel().describe() == "12.5GB/s+0.05ms"
        assert "ingress 2GB/s" in LinkModel(ingress_gb_s=2.0).describe()
