"""Tests for cluster-level routing policies."""

from __future__ import annotations

import pytest

from repro.cluster import (
    CLUSTER_ROUTERS,
    EarliestFinishHostRouter,
    LeastLoadedHostRouter,
    PartitionAffinityRouter,
    RoundRobinHostRouter,
    get_cluster_router,
    list_cluster_routers,
)
from repro.serve import InferenceRequest


class FakeHost:
    """Just enough of a Host for router ranking."""

    def __init__(self, host_id, predicted=0.0, remaining=0.0, pending=0):
        self.host_id = host_id
        self._predicted = predicted
        self._remaining = remaining
        self.pending_samples = pending

    def predicted_completion_ms(self, request):
        return self._predicted

    def remaining_work_ms(self, now_ms):
        return self._remaining


def request(request_id=0, model="m"):
    return InferenceRequest(request_id=request_id, model=model, arrival_ms=0.0)


class TestRegistry:
    def test_lists_all_policies(self):
        assert list_cluster_routers() == sorted(CLUSTER_ROUTERS)
        assert "earliest-finish-host" in list_cluster_routers()

    def test_name_normalisation(self):
        assert isinstance(
            get_cluster_router("Least_Loaded_Host"), LeastLoadedHostRouter
        )

    def test_instances_pass_through(self):
        router = RoundRobinHostRouter()
        assert get_cluster_router(router) is router

    def test_unknown_name_lists_policies(self):
        with pytest.raises(ValueError, match="earliest-finish-host"):
            get_cluster_router("random")

    def test_factories_build_fresh_instances(self):
        assert get_cluster_router("round-robin-host") is not get_cluster_router(
            "round-robin-host"
        )


class TestPolicies:
    def test_earliest_finish_prefers_the_fastest_prediction(self):
        hosts = [FakeHost(0, predicted=5.0), FakeHost(1, predicted=2.0)]
        assert EarliestFinishHostRouter().pick(hosts, request(), 0.0).host_id == 1

    def test_earliest_finish_ties_break_by_host_id(self):
        hosts = [FakeHost(1, predicted=2.0), FakeHost(0, predicted=2.0)]
        assert EarliestFinishHostRouter().pick(hosts, request(), 0.0).host_id == 0

    def test_least_loaded_ranks_by_busy_then_pending(self):
        hosts = [
            FakeHost(0, remaining=4.0),
            FakeHost(1, remaining=1.0, pending=3),
            FakeHost(2, remaining=1.0, pending=1),
        ]
        assert LeastLoadedHostRouter().pick(hosts, request(), 0.0).host_id == 2

    def test_round_robin_cycles_in_order(self):
        hosts = [FakeHost(0), FakeHost(1), FakeHost(2)]
        router = RoundRobinHostRouter()
        picks = [router.pick(hosts, request(i), 0.0).host_id for i in range(5)]
        assert picks == [0, 1, 2, 0, 1]

    def test_partition_affinity_without_a_plan_falls_back(self):
        hosts = [FakeHost(0, remaining=9.0), FakeHost(1, remaining=1.0)]
        assert PartitionAffinityRouter().pick(hosts, request(), 0.0).host_id == 1

    def test_partition_affinity_pins_covered_models_to_stage_zero(self):
        from repro.cluster import partition_graph
        from repro.models import build_model

        plan = partition_graph(build_model("squeezenet", 1), 2, model="squeezenet")
        router = PartitionAffinityRouter()
        router.plan = plan
        hosts = [FakeHost(0, remaining=9.0), FakeHost(1, remaining=1.0)]
        picked = router.pick(hosts, request(model="squeezenet"), 0.0)
        assert picked.host_id == plan.host_of_stage(0)
        # A model the plan does not cover falls back to least-loaded.
        assert router.pick(hosts, request(model="other"), 0.0).host_id == 1
