"""Tests for graph partitioning: device assignment + communication insertion."""

from __future__ import annotations

import pytest

from repro.cluster import PartitionError, partition_graph
from repro.engine import Engine
from repro.ir import validate_graph
from repro.models import build_model


@pytest.fixture(scope="module")
def squeezenet():
    return build_model("squeezenet", 1)


class TestPartitionGraph:
    def test_stages_tile_the_block_list(self, squeezenet):
        plan = partition_graph(squeezenet, 4, model="squeezenet")
        assert plan.num_stages == 4
        ranges = [stage.block_range for stage in plan.stages]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(squeezenet.blocks)
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        assert [stage.host for stage in plan.stages] == [0, 1, 2, 3]

    def test_balances_the_flops_bottleneck(self, squeezenet):
        # The DP minimises the maximum per-stage FLOPs: the bottleneck of the
        # chosen plan can never exceed the whole model on one host, and any
        # other cut of the same stage count is at least as imbalanced.
        plan = partition_graph(squeezenet, 2, model="squeezenet")
        total = sum(stage.flops for stage in plan.stages)
        bottleneck = max(stage.flops for stage in plan.stages)
        assert bottleneck < total
        assert bottleneck >= total / 2

    def test_memory_bounds_bind_stage_placement(self, squeezenet):
        # Host 1 is small: the plan must keep stage 1's resident weights under
        # its bound even at the cost of FLOPs balance.
        bound_gb = 3e-3  # 3 MB
        unbounded = partition_graph(squeezenet, 2, model="squeezenet")
        assert unbounded.stages[1].weight_bytes > bound_gb * 1e9
        plan = partition_graph(
            squeezenet, 2, memory_bounds=[None, bound_gb], model="squeezenet"
        )
        assert plan.stages[1].weight_bytes <= bound_gb * 1e9
        assert plan.stages[1].block_range != unbounded.stages[1].block_range

    def test_infeasible_bounds_raise(self, squeezenet):
        with pytest.raises(PartitionError):
            partition_graph(
                squeezenet, 2, memory_bounds=[1e-6, 1e-6], model="squeezenet"
            )

    def test_deterministic(self, squeezenet):
        first = partition_graph(squeezenet, 3, model="squeezenet")
        second = partition_graph(build_model("squeezenet", 1), 3, model="squeezenet")
        assert first.stages == second.stages

    def test_single_stage_is_the_whole_model(self, squeezenet):
        plan = partition_graph(squeezenet, 1, model="squeezenet")
        assert plan.num_stages == 1
        graph = plan.stage_graph(0, 1)
        assert len(graph.blocks) == len(squeezenet.blocks)


class TestStageGraphs:
    def test_stage_graphs_validate_and_cover_every_operator(self, squeezenet):
        plan = partition_graph(squeezenet, 3, model="squeezenet")
        op_names: list[str] = []
        for index in range(plan.num_stages):
            graph = plan.stage_graph(index, 2)
            validate_graph(graph)
            assert len(graph.placeholders) == 1
            op_names.extend(op.name for op in graph.operators())
        assert sorted(op_names) == sorted(op.name for op in squeezenet.operators())

    def test_recv_placeholder_keeps_the_producer_name(self, squeezenet):
        plan = partition_graph(squeezenet, 2, model="squeezenet")
        stage1 = plan.stage_graph(1, 1)
        assert stage1.placeholders[0].name == plan.stages[1].input_node

    def test_recv_bytes_match_the_boundary_tensor(self, squeezenet):
        plan = partition_graph(squeezenet, 2, model="squeezenet")
        boundary = squeezenet.nodes[plan.stages[1].input_node]
        assert plan.stages[1].recv_bytes == boundary.output_shape.with_batch(1).bytes()

    def test_stage_graphs_compile(self, squeezenet):
        plan = partition_graph(squeezenet, 2, model="squeezenet")
        engine = Engine("k80")
        for index in range(plan.num_stages):
            compiled = engine.compile(plan.stage_graph(index, 1))
            assert compiled.latency_ms() > 0

    def test_graph_builder_resolves_stage_models_and_the_zoo(self, squeezenet):
        plan = partition_graph(squeezenet, 2, model="squeezenet")
        build = plan.graph_builder()
        stage_model = plan.stages[1].model
        assert build(stage_model, 1).name == stage_model
        # Anything else falls through to the registered model zoo.
        assert len(build("squeezenet", 1).blocks) == len(squeezenet.blocks)
