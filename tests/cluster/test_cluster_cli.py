"""CLI topology-flag validation for ``ios-bench serve --cluster``."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import serve_main


def error_of(capsys, argv) -> str:
    with pytest.raises(SystemExit) as excinfo:
        serve_main(argv)
    assert excinfo.value.code == 2
    return capsys.readouterr().err


class TestTopologyFlagConflicts:
    """--device/--num-workers are rejected by every pool-owning flag alike."""

    def test_fleet_rejects_device(self, capsys):
        err = error_of(capsys, ["--fleet", "k80:2", "--device", "k80"])
        assert "--fleet declares the whole pool" in err

    def test_fleet_rejects_num_workers(self, capsys):
        err = error_of(capsys, ["--fleet", "k80:2", "--num-workers", "3"])
        assert "--fleet declares the whole pool" in err

    def test_cluster_rejects_device(self, capsys):
        err = error_of(capsys, ["--cluster", "2", "--device", "k80"])
        assert "--cluster declares one pool per host" in err

    def test_cluster_rejects_num_workers(self, capsys):
        err = error_of(capsys, ["--cluster", "2", "--num-workers", "3"])
        assert "--cluster declares one pool per host" in err

    def test_cluster_composes_with_fleet(self, capsys):
        # --fleet declares each host's pool; the combination is the sanctioned
        # spelling, not a conflict.
        rc = serve_main([
            "--model", "squeezenet", "--cluster", "2", "--fleet", "k80:1",
            "--requests", "8", "--batch-sizes", "1,2", "--rate", "100",
        ])
        assert rc == 0
        assert "cluster   : 2 hosts" in capsys.readouterr().out


class TestClusterFlagValidation:
    def test_cluster_must_be_positive(self, capsys):
        err = error_of(capsys, ["--cluster", "0"])
        assert "--cluster needs at least one host" in err

    def test_partition_requires_a_real_cluster(self, capsys):
        err = error_of(capsys, ["--partition"])
        assert "--partition" in err
        err = error_of(capsys, ["--partition", "--cluster", "1"])
        assert "--partition" in err

    def test_link_and_host_memory_require_cluster(self, capsys):
        err = error_of(capsys, ["--link", "bw=5"])
        assert "add --cluster" in err
        err = error_of(capsys, ["--host-memory", "4"])
        assert "add --cluster" in err

    def test_cluster_conflicts_with_compare(self, capsys):
        err = error_of(capsys, ["--cluster", "2", "--compare"])
        assert "drop --compare" in err

    def test_bad_link_spec_is_reported(self, capsys):
        err = error_of(capsys, ["--cluster", "2", "--link", "speed=9"])
        assert "bad --link spec" in err

    def test_host_memory_count_must_match_hosts(self, capsys):
        err = error_of(capsys, ["--cluster", "3", "--host-memory", "1,2"])
        assert "--host-memory lists 2 bounds" in err

    def test_bad_fleet_spec_quotes_the_spec(self, capsys):
        err = error_of(capsys, ["--fleet", "k80:2,v100:x"])
        assert "k80:2,v100:x" in err
        err = error_of(capsys, ["--fleet", "k80:1,k80:2"])
        assert "duplicate device group" in err


class TestClusterRuns:
    def test_cluster_run_reports_per_host_rows(self, capsys, tmp_path):
        metrics_file = tmp_path / "metrics.json"
        rc = serve_main([
            "--model", "squeezenet", "--cluster", "2", "--fleet", "k80:1",
            "--requests", "12", "--batch-sizes", "1,2", "--rate", "150",
            "--slo", "200", "--metrics", str(metrics_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "host0" in out and "host1" in out
        assert metrics_file.exists()

    def test_partitioned_cluster_trace_has_host_tracks(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        rc = serve_main([
            "--model", "squeezenet", "--cluster", "2", "--partition",
            "--fleet", "k80:1", "--requests", "12", "--batch-sizes", "1,2",
            "--rate", "150", "--trace", str(trace_file),
        ])
        assert rc == 0
        assert "partition of 'squeezenet'" in capsys.readouterr().out
        data = json.loads(trace_file.read_text())
        processes = {
            event["args"]["name"]
            for event in data["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert any(name.startswith("host0") for name in processes)
        assert any(name.startswith("host1") for name in processes)
        assert any("link" in name for name in processes)
