"""Unit tests for repro.ir.tensor."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ir.tensor import FLOAT32_BYTES, TensorShape, conv2d_output_hw, pool2d_output_hw


class TestTensorShape:
    def test_spatial_dims(self):
        shape = TensorShape(2, 3, 224, 224)
        assert shape.dims() == (2, 3, 224, 224)
        assert shape.is_spatial
        assert shape.rank == 4

    def test_matrix_dims(self):
        shape = TensorShape(4, 1000)
        assert shape.dims() == (4, 1000)
        assert not shape.is_spatial
        assert shape.rank == 2

    def test_numel_and_bytes(self):
        shape = TensorShape(1, 3, 4, 5)
        assert shape.numel() == 60
        assert shape.bytes() == 60 * FLOAT32_BYTES
        assert shape.bytes(dtype_bytes=2) == 120

    def test_iteration_matches_dims(self):
        shape = TensorShape(1, 64, 7, 7)
        assert tuple(shape) == shape.dims()

    @pytest.mark.parametrize("batch,channels", [(0, 3), (-1, 3), (1, 0), (1, -4)])
    def test_rejects_non_positive_batch_or_channels(self, batch, channels):
        with pytest.raises(ValueError):
            TensorShape(batch, channels, 8, 8)

    def test_rejects_partial_spatial(self):
        with pytest.raises(ValueError):
            TensorShape(1, 3, 8, None)

    def test_rejects_non_positive_spatial(self):
        with pytest.raises(ValueError):
            TensorShape(1, 3, 0, 8)

    def test_with_batch(self):
        shape = TensorShape(1, 3, 8, 8)
        assert shape.with_batch(32) == TensorShape(32, 3, 8, 8)

    def test_with_channels(self):
        assert TensorShape(1, 3, 8, 8).with_channels(64).channels == 64

    def test_with_spatial(self):
        assert TensorShape(1, 3, 8, 8).with_spatial(4, 5) == TensorShape(1, 3, 4, 5)

    def test_flattened_spatial(self):
        assert TensorShape(2, 3, 4, 5).flattened() == TensorShape(2, 60)

    def test_flattened_matrix_is_identity(self):
        shape = TensorShape(2, 60)
        assert shape.flattened() == shape

    def test_str_and_parse_roundtrip_4d(self):
        shape = TensorShape(1, 384, 15, 15)
        assert TensorShape.parse(str(shape)) == shape

    def test_str_and_parse_roundtrip_2d(self):
        shape = TensorShape(8, 1000)
        assert TensorShape.parse(str(shape)) == shape

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TensorShape.parse("1x2x3")

    def test_hashable_and_equal(self):
        assert hash(TensorShape(1, 3, 8, 8)) == hash(TensorShape(1, 3, 8, 8))
        assert TensorShape(1, 3, 8, 8) != TensorShape(1, 3, 8, 9)

    def test_concat_channels(self):
        shapes = [TensorShape(1, 64, 8, 8), TensorShape(1, 32, 8, 8)]
        assert TensorShape.concat_channels(shapes) == TensorShape(1, 96, 8, 8)

    def test_concat_channels_rejects_spatial_mismatch(self):
        with pytest.raises(ValueError):
            TensorShape.concat_channels([TensorShape(1, 64, 8, 8), TensorShape(1, 32, 7, 8)])

    def test_concat_channels_rejects_batch_mismatch(self):
        with pytest.raises(ValueError):
            TensorShape.concat_channels([TensorShape(1, 64, 8, 8), TensorShape(2, 32, 8, 8)])

    def test_concat_channels_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            TensorShape.concat_channels([TensorShape(1, 64, 8, 8), TensorShape(1, 32)])

    def test_concat_channels_rejects_empty(self):
        with pytest.raises(ValueError):
            TensorShape.concat_channels([])

    @given(
        batch=st.integers(1, 256),
        channels=st.integers(1, 4096),
        height=st.integers(1, 512),
        width=st.integers(1, 512),
    )
    def test_numel_is_product_property(self, batch, channels, height, width):
        shape = TensorShape(batch, channels, height, width)
        assert shape.numel() == batch * channels * height * width

    @given(batch=st.integers(1, 64), channels=st.integers(1, 512))
    def test_parse_str_roundtrip_property(self, batch, channels):
        shape = TensorShape(batch, channels)
        assert TensorShape.parse(str(shape)) == shape


class TestConvPoolArithmetic:
    def test_same_padding_preserves_size(self):
        assert conv2d_output_hw(15, 15, (3, 3), (1, 1), (1, 1)) == (15, 15)

    def test_stride_two_halves_size(self):
        assert conv2d_output_hw(224, 224, (3, 3), (2, 2), (1, 1)) == (112, 112)

    def test_valid_padding(self):
        assert conv2d_output_hw(299, 299, (3, 3), (2, 2), (0, 0)) == (149, 149)

    def test_conv_rejects_empty_output(self):
        with pytest.raises(ValueError):
            conv2d_output_hw(2, 2, (5, 5), (1, 1), (0, 0))

    def test_pool_floor_vs_ceil(self):
        assert pool2d_output_hw(7, 7, (2, 2), (2, 2), (0, 0)) == (3, 3)
        assert pool2d_output_hw(7, 7, (2, 2), (2, 2), (0, 0), ceil_mode=True) == (4, 4)

    def test_pool_rejects_empty_output(self):
        with pytest.raises(ValueError):
            pool2d_output_hw(2, 2, (5, 5), (2, 2), (0, 0))

    @given(
        size=st.integers(7, 256),
        kernel=st.sampled_from([1, 3, 5, 7]),
        stride=st.sampled_from([1, 2]),
    )
    def test_same_padding_formula_property(self, size, kernel, stride):
        out_h, out_w = conv2d_output_hw(
            size, size, (kernel, kernel), (stride, stride), (kernel // 2, kernel // 2)
        )
        expected = (size + 2 * (kernel // 2) - kernel) // stride + 1
        assert out_h == out_w == expected
        assert out_h >= 1
