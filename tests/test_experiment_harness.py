"""Coverage for the heavier experiment-harness modules using tiny workloads.

The full experiments sweep the paper's benchmark networks (minutes of DP
search); these tests exercise the exact same code paths on the Figure-2 block
and SqueezeNet so the whole harness stays covered by the fast test suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    default_context,
    run_blockwise_ablation,
    run_cost_model_ablation,
    run_figure6,
    run_figure7,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure14,
    run_figure15,
    run_figure16,
    run_resnet_note,
    run_table1,
    run_table3_batch,
)

TINY = ["figure2_block"]


@pytest.fixture(scope="module")
def ctx():
    # One shared context so the Figure-2-block IOS search is reused by every test.
    return default_context("v100")


class TestScheduleAndFrameworkFigures:
    def test_figure6_on_tiny_model(self, ctx):
        table = run_figure6(models=TINY, context=ctx)
        row = table.row_by("network", "figure2_block")
        assert row["ios-both"] == 1.0
        assert row["sequential"] < row["greedy"] <= 1.0
        assert row["ios_speedup_vs_sequential"] > 1.5
        geomean = table.row_by("network", "geomean")
        assert geomean["ios-both"] == pytest.approx(1.0)

    def test_figure7_on_tiny_model(self, ctx):
        table = run_figure7(models=TINY, context=ctx)
        row = table.row_by("network", "figure2_block")
        assert row["ios"] == 1.0
        assert row["ios_speedup_vs_best_baseline"] > 1.0
        assert 0 < row["tensorflow"] < row["tensorrt"] <= 1.0

    def test_figure14_and_15_use_2080ti(self):
        table14 = run_figure14(models=TINY)
        table15 = run_figure15(models=TINY)
        assert "rtx2080ti" in table14.title
        assert "rtx2080ti" in table15.title
        assert table14.row_by("network", "figure2_block")["ios-both"] == 1.0
        assert table15.row_by("network", "figure2_block")["ios"] == 1.0

    def test_figure12_costs_and_winner(self, ctx):
        table = run_figure12(models=TINY, context=ctx)
        row = table.row_by("network", "figure2_block")
        assert row["ios"] == 1.0  # dense convolutions: IOS beats TVM-AutoTune
        totals = table.row_by("network", "geomean/total")
        assert totals["tvm_optimization_gpu_hours"] > 100 * totals["ios_optimization_gpu_hours"]


class TestSweepsAndCaseStudies:
    def test_figure9_pruning_grid_on_tiny_model(self, ctx):
        table = run_figure9(models=TINY, grid=[(3, 8), (1, 2)], context=ctx)
        loose = next(r for r in table.rows if r["r"] == 3)
        tight = next(r for r in table.rows if r["r"] == 1)
        assert tight["stage_measurements"] <= loose["stage_measurements"]
        assert tight["latency_ms"] >= loose["latency_ms"] - 1e-9
        assert loose["optimization_gpu_s"] > 0

    def test_figure11_small_sweep(self, ctx):
        table = run_figure11(model="figure2_block", batch_sizes=(1, 8), context=ctx)
        assert table.rows[1]["ios"] > table.rows[0]["ios"]  # throughput grows with batch
        for row in table.rows:
            assert row["ios"] >= row["sequential"]

    def test_figure10_case_study_small_batches(self):
        table = run_figure10(batch_sizes=(1, 4))
        small = table.row_by("optimized_for_batch", 1)
        large = table.row_by("optimized_for_batch", 4)
        assert small["latency_on_bs1_ms"] <= large["latency_on_bs1_ms"] + 1e-9
        assert large["latency_on_bs4_ms"] <= small["latency_on_bs4_ms"] + 1e-9
        assert small["num_stages"] >= 1

    def test_table3_batch_on_tiny_model(self):
        table = run_table3_batch(model="figure2_block", batch_sizes=(1, 8))
        assert all(row["diagonal_is_best"] for row in table.rows)

    def test_table1_on_small_networks(self):
        table = run_table1(models=["squeezenet"])
        row = table.row_by("network", "squeezenet")
        assert row["transitions"] <= row["transition_bound"]
        assert row["num_schedules"] >= row["transitions"]

    def test_figure16_subset_of_blocks(self, ctx):
        table = run_figure16(block_names=["mixed_5b", "mixed_7c"], context=ctx)
        block_rows = [r for r in table.rows if r["block"] != "all_blocks_total"]
        assert len(block_rows) == 2
        assert all(r["speedup"] >= 1.0 - 1e-9 for r in block_rows)

    def test_resnet_note_small(self, ctx):
        table = run_resnet_note(models=("resnet_18",), context=ctx)
        row = table.row_by("network", "resnet_18")
        assert 0.0 <= row["speedup_percent"] < 20.0


class TestAblations:
    def test_cost_model_ablation_on_tiny_models(self, ctx):
        table = run_cost_model_ablation(models=("figure2_block", "squeezenet"), context=ctx)
        for row in table.rows:
            assert row["flops_cost_model_ms"] >= row["simulated_cost_model_ms"] - 1e-9
            assert row["quality_gap_percent"] >= -1e-6

    def test_blockwise_ablation_on_tiny_models(self, ctx):
        table = run_blockwise_ablation(models=("figure2_block",), context=ctx)
        row = table.row_by("network", "figure2_block")
        # A single-block graph: whole-graph and block-wise searches coincide.
        assert row["whole_graph_ms"] == pytest.approx(row["blockwise_ms"], rel=1e-6)
        assert row["whole_graph_transitions"] == row["blockwise_transitions"]
