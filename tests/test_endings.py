"""Unit tests for ending enumeration, pruning and DAG width."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BlockIndex,
    PruningStrategy,
    block_width,
    dag_width,
    enumerate_endings,
    groups_of_mask,
    is_ending,
)
from repro.models import chain_graph, diamond_graph, figure2_block, figure5_graph, parallel_chains_graph


def block_index(graph):
    return BlockIndex(graph, graph.schedulable_names())


def brute_force_endings(block: BlockIndex, state: int) -> set[int]:
    """All non-empty successor-closed subsets of ``state`` by brute force."""
    members = [i for i in range(block.n) if state >> i & 1]
    result = set()
    for size in range(1, len(members) + 1):
        for subset in combinations(members, size):
            mask = 0
            for bit in subset:
                mask |= 1 << bit
            if all((block.succ_mask[bit] & state & ~mask) == 0 for bit in subset):
                result.add(mask)
    return result


class TestPruningStrategy:
    def test_defaults_match_paper(self):
        pruning = PruningStrategy()
        assert pruning.max_group_size == 3
        assert pruning.max_groups == 8
        assert pruning.max_operators == 24
        assert pruning.describe() == "r=3, s=8"

    def test_unpruned(self):
        unpruned = PruningStrategy.unpruned()
        assert unpruned.max_operators is None
        assert unpruned.admits([100] * 50)

    def test_admits(self):
        pruning = PruningStrategy(max_group_size=2, max_groups=3)
        assert pruning.admits([2, 2, 1])
        assert not pruning.admits([3])
        assert not pruning.admits([1, 1, 1, 1])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PruningStrategy(max_group_size=0)
        with pytest.raises(ValueError):
            PruningStrategy(max_groups=0)


class TestBlockIndex:
    def test_topological_bit_order(self, fig2):
        index = block_index(fig2)
        assert index.n == 5
        assert index.index["conv_a"] < index.index["conv_b"]
        assert index.index["conv_b"] < index.index["concat"]

    def test_mask_roundtrip(self, fig2):
        index = block_index(fig2)
        mask = index.mask_of(["conv_a", "concat"])
        assert set(index.names_of(mask)) == {"conv_a", "concat"}
        assert list(index.bits(mask)) == sorted(index.bits(mask))

    def test_succ_and_adj_masks(self, fig2):
        index = block_index(fig2)
        a = index.index["conv_a"]
        b = index.index["conv_b"]
        assert index.succ_mask[a] >> b & 1
        assert index.adj_mask[b] >> a & 1


class TestGroupsOfMask:
    def test_figure2_groups(self, fig2):
        index = block_index(fig2)
        mask = index.mask_of(["conv_a", "conv_c", "conv_d"])
        groups = groups_of_mask(index, mask)
        assert len(groups) == 3
        mask_with_concat = index.mask_of(["conv_c", "conv_d", "concat"])
        assert len(groups_of_mask(index, mask_with_concat)) == 1

    def test_groups_partition_the_mask(self, fig2):
        index = block_index(fig2)
        mask = index.full_mask
        groups = groups_of_mask(index, mask)
        combined = 0
        for group in groups:
            assert combined & group == 0
            combined |= group
        assert combined == mask


class TestIsEnding:
    def test_paper_figure4_semantics(self, fig5):
        # Figure 5 graph: a -> b, c independent.  {b}, {c}, {b, c}, {a, b} ... are
        # endings of the full set; {a} is not (its successor b would be left out).
        index = block_index(fig5)
        full = index.full_mask
        a, b, c = (index.index[f"conv_{x}"] for x in "abc")
        assert is_ending(index, 1 << b, full)
        assert is_ending(index, (1 << b) | (1 << c), full)
        assert is_ending(index, (1 << a) | (1 << b), full)
        assert not is_ending(index, 1 << a, full)
        assert not is_ending(index, 0, full)
        assert not is_ending(index, 1 << a, 1 << b)  # not a subset


class TestEnumerateEndings:
    def test_figure5_full_state_endings(self, fig5):
        # Endings of {a, b, c}: {b}, {c}, {b,c}, {a,b}, {a,b,c} -> 5, matching
        # the five outgoing transitions of the initial state in Figure 5 (2).
        index = block_index(fig5)
        endings = {mask for mask, _ in enumerate_endings(index, index.full_mask)}
        assert len(endings) == 5

    def test_matches_brute_force_on_examples(self):
        for graph in (figure5_graph(), diamond_graph(), figure2_block(),
                      parallel_chains_graph(2, 2, join=False), chain_graph(4)):
            index = BlockIndex(graph, graph.schedulable_names())
            got = {mask for mask, _ in enumerate_endings(index, index.full_mask)}
            assert got == brute_force_endings(index, index.full_mask)

    def test_chain_has_suffix_endings_only(self):
        graph = chain_graph(length=5)
        index = BlockIndex(graph, graph.schedulable_names())
        endings = {mask for mask, _ in enumerate_endings(index, index.full_mask)}
        assert len(endings) == 5  # the 5 suffixes

    def test_group_decomposition_returned(self, fig2):
        index = block_index(fig2)
        for mask, groups in enumerate_endings(index, index.full_mask):
            assert sum(groups) == mask
            for group in groups:
                assert group & mask == group

    def test_pruning_limits_group_size(self, fig2):
        index = block_index(fig2)
        pruning = PruningStrategy(max_group_size=1, max_groups=8)
        for _mask, groups in enumerate_endings(index, index.full_mask, pruning):
            assert all(g.bit_count() == 1 for g in groups)

    def test_pruning_limits_group_count(self):
        graph = parallel_chains_graph(num_chains=4, chain_length=1, join=False)
        index = BlockIndex(graph, graph.schedulable_names())
        pruning = PruningStrategy(max_group_size=3, max_groups=2)
        counts = [len(groups) for _m, groups in enumerate_endings(index, index.full_mask, pruning)]
        assert counts and max(counts) <= 2

    def test_pruned_is_subset_of_unpruned(self, fig2):
        index = block_index(fig2)
        unpruned = {m for m, _ in enumerate_endings(index, index.full_mask)}
        pruned = {m for m, _ in enumerate_endings(index, index.full_mask, PruningStrategy(1, 2))}
        assert pruned <= unpruned
        assert len(pruned) < len(unpruned)

    def test_empty_state_yields_nothing(self, fig2):
        index = block_index(fig2)
        assert list(enumerate_endings(index, 0)) == []

    @settings(max_examples=25, deadline=None)
    @given(num_chains=st.integers(1, 3), chain_length=st.integers(1, 3), data=st.data())
    def test_every_ending_is_successor_closed_property(self, num_chains, chain_length, data):
        graph = parallel_chains_graph(num_chains, chain_length, join=True)
        index = BlockIndex(graph, graph.schedulable_names())
        # Pick a random reachable sub-state by removing one enumerated ending.
        all_endings = [m for m, _ in enumerate_endings(index, index.full_mask)]
        ending = data.draw(st.sampled_from(all_endings))
        state = index.full_mask & ~ending
        for mask, _groups in enumerate_endings(index, state):
            assert is_ending(index, mask, state)


class TestWidth:
    def test_chain_width_is_one(self):
        assert dag_width(chain_graph(length=5)) == 1

    def test_parallel_chains_width_is_chain_count(self):
        graph = parallel_chains_graph(num_chains=4, chain_length=3, join=False)
        assert dag_width(graph) == 4

    def test_figure2_width(self, fig2):
        # conv_a, conv_c, conv_d are mutually unreachable -> width 3.
        assert dag_width(fig2) == 3

    def test_diamond_width(self, diamond):
        assert dag_width(diamond) == 2

    def test_block_width_matches_dag_width_single_block(self, fig2):
        assert block_width(fig2, fig2.blocks[0]) == dag_width(fig2)

    def test_empty_subset(self, fig2):
        assert dag_width(fig2, []) == 0

    def test_inception_c_block_width_matches_paper(self):
        from repro.models import build_model

        graph = build_model("inception_v3")
        block = next(b for b in graph.blocks if b.name == "mixed_7c")
        # Paper Table 1: the largest Inception V3 block has n=11, d=6.
        assert len(graph.schedulable_names(block)) == 11
        assert block_width(graph, block) == 6
