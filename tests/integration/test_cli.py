"""Integration tests for the ios-bench command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.cli import main


class TestCLI:
    def test_experiment_list_is_complete(self):
        expected = {
            "figure1", "figure2", "table1", "table2", "figure6", "figure7", "figure8",
            "figure9", "table3-batch", "table3-device", "figure10", "figure11", "figure12",
            "figure13", "figure14", "figure15", "figure16", "resnet-note",
            "ablation-cost-model", "ablation-blockwise",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_fast_experiment(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "nasnet_a" in out

    def test_run_with_csv_output(self, capsys, tmp_path):
        assert main(["figure13", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "figure13.csv").exists()

    def test_device_flag(self, capsys):
        assert main(["figure2", "--device", "rtx2080ti"]) == 0
        assert "rtx2080ti" not in capsys.readouterr().err

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])
