"""Integration tests for the ios-bench command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.cli import main


class TestCLI:
    def test_experiment_list_is_complete(self):
        expected = {
            "figure1", "figure2", "table1", "table2", "figure6", "figure7", "figure8",
            "figure9", "table3-batch", "table3-device", "figure10", "figure11", "figure12",
            "figure13", "figure14", "figure15", "figure16", "resnet-note",
            "ablation-cost-model", "ablation-blockwise", "ablation-passes",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_fast_experiment(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "nasnet_a" in out

    def test_run_with_csv_output(self, capsys, tmp_path):
        assert main(["figure13", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "figure13.csv").exists()

    def test_device_flag(self, capsys):
        assert main(["figure2", "--device", "rtx2080ti"]) == 0
        assert "rtx2080ti" not in capsys.readouterr().err

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestServeCLI:
    SERVE_ARGS = [
        "serve", "--model", "squeezenet", "--requests", "60", "--rate", "400",
        "--batch-sizes", "1,2,4",
    ]

    def test_serve_prints_a_report(self, capsys):
        assert main(self.SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "served 60 requests" in out
        assert "throughput" in out
        assert "registry" in out

    def test_serve_persists_schedules_across_invocations(self, capsys, tmp_path):
        args = self.SERVE_ARGS + ["--registry-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 disk hits" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "registry  : 0 searches" in second

    def test_serve_compare_writes_csv(self, capsys, tmp_path):
        assert main([
            "serve", "--compare", "--model", "squeezenet", "--requests", "40",
            "--batch-sizes", "1,2,4", "--csv-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "dynamic" in out and "unbatched" in out
        assert (tmp_path / "serving_comparison.csv").exists()

    def test_serve_no_batching_flag(self, capsys):
        assert main(self.SERVE_ARGS + ["--no-batching"]) == 0
        out = capsys.readouterr().out
        # Every request executes alone: as many batches as requests.
        assert "in 60 batches" in out

    def test_serve_rejects_unknown_pattern(self):
        with pytest.raises(SystemExit):
            main(["serve", "--pattern", "lumpy"])

    def test_serve_caps_traffic_to_a_small_ladder(self, capsys):
        # The default sample mix includes 4-sample requests; a ladder topping
        # out at 2 must cap the mix instead of crashing after warmup.
        assert main([
            "serve", "--model", "squeezenet", "--requests", "30",
            "--batch-sizes", "1,2",
        ]) == 0
        captured = capsys.readouterr()
        assert "served 30 requests" in captured.out
        assert "capped to the ladder maximum 2" in captured.err

    @pytest.mark.parametrize("bad", [
        ["--requests", "0"],
        ["--num-workers", "0"],
        ["--rate", "0"],
        ["--burst-size", "0"],
        ["--burst-gap-ms", "0"],
        ["--max-wait-ms", "-1"],
        ["--batch-sizes", "1,2,2"],
        ["--compare", "--no-batching"],
    ])
    def test_serve_rejects_bad_arguments_cleanly(self, bad):
        with pytest.raises(SystemExit):
            main(["serve"] + bad)

    def test_serve_passes_flag_round_trips_warm(self, capsys, tmp_path):
        # A warm serve run on a pass-optimised graph must still perform zero
        # scheduler searches: the fingerprinted registry entries are reused.
        args = self.SERVE_ARGS + ["--passes", "--registry-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "served 60 requests" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "registry  : 0 searches" in second

    def test_serve_passes_shares_entries_when_rewrites_are_noops(self, capsys, tmp_path):
        # squeezenet is already fully fused, so the pipeline is a no-op and
        # the fingerprint matches the raw graph: flipping --passes may safely
        # reuse the persisted schedules.  (Graphs that *do* rewrite get a new
        # fingerprint and recompile — covered by the registry unit tests.)
        assert main(self.SERVE_ARGS + ["--registry-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(self.SERVE_ARGS + ["--passes", "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "registry  : 0 searches" in out

    def test_serve_fleet_reports_per_device_groups(self, capsys):
        assert main([
            "serve", "--model", "squeezenet", "--requests", "60", "--rate", "2500",
            "--batch-sizes", "1,2,4", "--fleet", "k80:1,v100:1",
        ]) == 0
        out = capsys.readouterr().out
        assert "router    : earliest-finish" in out
        assert "group k80×1:" in out and "group v100×1:" in out

    def test_serve_fleet_compare_prints_homogeneous_baselines(self, capsys, tmp_path):
        assert main([
            "serve", "--compare", "--model", "squeezenet", "--requests", "60",
            "--rate", "3000", "--batch-sizes", "1,2,4",
            "--fleet", "k80:1,v100:1", "--pattern", "poisson",
            "--csv-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        # The mixed fleet plus one equally-sized homogeneous fleet per type.
        assert "k80:1,v100:1" in out and "k80:2" in out and "v100:2" in out
        assert "k80:1@" in out  # per-device-group utilisation cell
        assert (tmp_path / "fleet_comparison.csv").exists()

    def test_serve_fleet_router_flag(self, capsys):
        assert main([
            "serve", "--model", "squeezenet", "--requests", "40", "--rate", "2000",
            "--batch-sizes", "1,2", "--fleet", "v100:2", "--router", "round-robin",
        ]) == 0
        assert "router    : round-robin" in capsys.readouterr().out

    @pytest.mark.parametrize("bad", [
        ["--fleet", "k80:1", "--device", "v100"],
        ["--fleet", "k80:1", "--num-workers", "2"],
        ["--fleet", "tpu:4"],
        ["--fleet", "k80:0"],
        ["--fleet", "k80:"],
        ["--router", "fastest"],
    ])
    def test_serve_fleet_rejects_bad_arguments(self, bad):
        with pytest.raises(SystemExit):
            main(["serve"] + bad)

    def test_serve_compare_forwards_pattern(self, capsys):
        assert main([
            "serve", "--compare", "--model", "squeezenet", "--requests", "40",
            "--batch-sizes", "1,2,4", "--pattern", "uniform",
        ]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines()
                if line.startswith(("poisson", "bursty", "uniform"))]
        assert rows and all(row.startswith("uniform") for row in rows)


class TestServeSloCLI:
    SLO_ARGS = [
        "serve", "--model", "squeezenet", "--device", "k80", "--num-workers", "1",
        "--pattern", "bursty", "--burst-size", "64", "--burst-gap-ms", "30",
        "--requests", "160", "--batch-sizes", "1,2,4,8", "--max-wait-ms", "2",
        "--slo", "20",
    ]

    def test_serve_slo_run_prints_the_slo_section(self, capsys):
        args = self.SLO_ARGS + ["--admission", "deadline", "--autoscale", "1:3"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "admission : deadline" in out
        assert "slo       :" in out
        assert "attainment" in out
        assert "autoscale :" in out

    def test_serve_slo_compare_prints_the_admission_table(self, capsys, tmp_path):
        args = self.SLO_ARGS + ["--compare", "--csv-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "admit-all" in out
        assert "deadline" in out
        assert (tmp_path / "slo_comparison.csv").exists()

    def test_serve_old_invocations_have_no_slo_noise(self, capsys):
        assert main(["serve", "--model", "squeezenet", "--requests", "40",
                     "--batch-sizes", "1,2,4"]) == 0
        out = capsys.readouterr().out
        assert "slo       :" not in out
        assert "admission :" not in out
        assert "autoscale :" not in out

    @pytest.mark.parametrize("bad", [
        ["--slo", "-1"],
        ["--autoscale", "3"],
        ["--autoscale", "4:1"],
        ["--autoscale", "2:4", "--num-workers", "1"],
        ["--admission", "nope"],
        ["--slo", "20", "--compare", "--fleet", "k80:1,v100:1"],
    ])
    def test_serve_slo_rejects_bad_arguments_cleanly(self, bad):
        with pytest.raises(SystemExit):
            main(["serve"] + bad)


class TestTraceCLI:
    TRACED_ARGS = [
        "serve", "--model", "squeezenet", "--requests", "40", "--rate", "400",
        "--batch-sizes", "1,2,4",
    ]

    def test_serve_trace_writes_a_valid_perfetto_json(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert main(self.TRACED_ARGS + ["--trace", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert "served 40 requests" in captured.out
        assert str(trace_path) in captured.err
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) == []

    def test_serve_metrics_dump_without_tracing(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        assert main(self.TRACED_ARGS + ["--metrics", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert "serve.executions" in snapshot
        assert "serve.latency_ms" in snapshot

    def test_trace_subcommand_validates_and_summarises(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(self.TRACED_ARGS + ["--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "tracks:" in out
        assert "serving/requests" in out

    def test_trace_subcommand_rejects_invalid_documents(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"traceEvents": [{"name": "x", "ph": "Z"}]}')
        assert main(["trace", str(bogus)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_compare_ignores_trace_flags_with_a_note(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(self.TRACED_ARGS
                    + ["--compare", "--pattern", "poisson",
                       "--trace", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert "ignoring them" in captured.err
        assert not trace_path.exists()
