"""Integration tests: whole pipeline from model zoo to executed schedules."""

from __future__ import annotations

import pytest

from repro import get_device, optimize
from repro.core import (
    IOSScheduler,
    Schedule,
    SimulatedCostModel,
    greedy_schedule,
    measure_schedule,
    schedule_latency_ms,
    sequential_schedule,
)
from repro.frameworks import get_framework
from repro.models import build_model


@pytest.fixture(scope="module")
def v100():
    return get_device("v100")


@pytest.fixture(scope="module")
def squeezenet():
    return build_model("squeezenet", batch_size=1)


@pytest.fixture(scope="module")
def squeezenet_schedules(squeezenet, v100):
    ios = optimize(squeezenet, v100)
    return {
        "sequential": sequential_schedule(squeezenet),
        "greedy": greedy_schedule(squeezenet),
        "ios": ios,
    }


class TestSqueezeNetEndToEnd:
    def test_all_schedules_execute_and_cover_graph(self, squeezenet, squeezenet_schedules, v100):
        for schedule in squeezenet_schedules.values():
            schedule.validate(squeezenet)
            assert measure_schedule(squeezenet, schedule, v100).latency_ms > 0

    def test_ios_is_fastest(self, squeezenet, squeezenet_schedules, v100):
        latencies = {
            name: schedule_latency_ms(squeezenet, schedule, v100)
            for name, schedule in squeezenet_schedules.items()
        }
        assert latencies["ios"] <= latencies["greedy"] + 1e-9
        assert latencies["ios"] <= latencies["sequential"] + 1e-9
        assert latencies["sequential"] / latencies["ios"] > 1.05

    def test_schedule_roundtrip_preserves_latency(self, squeezenet, squeezenet_schedules, v100, tmp_path):
        ios = squeezenet_schedules["ios"]
        path = ios.save(tmp_path / "squeezenet_ios.json")
        loaded = Schedule.load(path)
        assert schedule_latency_ms(squeezenet, loaded, v100) == pytest.approx(
            schedule_latency_ms(squeezenet, ios, v100)
        )

    def test_ios_beats_simulated_frameworks(self, squeezenet, squeezenet_schedules, v100):
        ios_latency = schedule_latency_ms(squeezenet, squeezenet_schedules["ios"], v100)
        for name in ("tensorflow", "tensorrt", "tvm-cudnn"):
            assert ios_latency < get_framework(name).latency_ms(squeezenet, v100)


class TestInceptionEndToEnd:
    @pytest.fixture(scope="class")
    def inception(self):
        return build_model("inception_v3", batch_size=1)

    @pytest.fixture(scope="class")
    def ios_result(self, inception, v100):
        return IOSScheduler(SimulatedCostModel(v100)).optimize_graph(inception)

    def test_speedup_in_paper_range(self, inception, ios_result, v100):
        seq = schedule_latency_ms(inception, sequential_schedule(inception), v100)
        ios = schedule_latency_ms(inception, ios_result.schedule, v100)
        # The paper reports ~1.6x over sequential execution on the real V100;
        # the simulator should land in a broadly similar range.
        assert 1.2 < seq / ios < 3.0

    def test_search_statistics_are_consistent(self, ios_result):
        stats = ios_result.block_stats
        assert sum(s.num_operators for s in stats) == 121
        assert all(s.num_transitions >= s.num_states for s in stats if s.reused_from is None)
        assert ios_result.total_measurements > 0
        assert ios_result.elapsed_s > 0

    def test_schedule_uses_concurrency_in_wide_blocks(self, inception, ios_result):
        widest_stage = max(ios_result.schedule.stages, key=len)
        assert len(widest_stage) >= 2

    def test_device_specialization_prefers_native_device(self, inception, v100, request):
        k80 = get_device("k80")
        v100_schedule = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(inception).schedule
        k80_schedule = IOSScheduler(SimulatedCostModel(k80)).optimize_graph(inception).schedule
        on_k80_native = schedule_latency_ms(inception, k80_schedule, k80)
        on_k80_foreign = schedule_latency_ms(inception, v100_schedule, k80)
        assert on_k80_native <= on_k80_foreign + 1e-9
