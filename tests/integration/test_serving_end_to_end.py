"""End-to-end serving integration test (the PR's acceptance scenario).

A synthetic traffic generator pushes several hundred requests with mixed
batch-size demand through the full pipeline — dynamic batcher → persistent
schedule registry → simulated worker pool — and the run must report
per-request latency and aggregate throughput.  A second run over the same
registry directory must perform **zero** scheduler searches: every schedule
comes back from disk.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    BatchPolicy,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
    run_serving,
)

MODEL = "squeezenet"
BATCH_SIZES = (1, 2, 4, 8)


def serving_config(registry_root=None) -> ServingConfig:
    return ServingConfig(
        model=MODEL,
        devices=("v100", "v100"),
        batch_sizes=BATCH_SIZES,
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=4.0),
        registry_root=str(registry_root) if registry_root else None,
    )


def traffic_config() -> TrafficConfig:
    # Mixed batch-size demand: mostly single images, some 2- and 4-image
    # requests, arriving fast enough that real batches form.
    return TrafficConfig(
        model=MODEL, pattern="poisson", num_requests=250, rate_rps=800.0,
        sample_sizes=(1, 2, 4), sample_weights=(0.6, 0.25, 0.15), seed=42,
    )


class TestServingEndToEnd:
    def test_200_plus_requests_flow_through_the_whole_pipeline(self, tmp_path):
        requests = TrafficGenerator(traffic_config()).generate()
        assert len(requests) >= 200
        assert {r.num_samples for r in requests} == {1, 2, 4}

        service = InferenceService(serving_config(tmp_path))
        report = service.run(requests)

        # Every request got an answer with a full latency decomposition.
        assert report.num_requests == len(requests)
        assert len(report.records) == len(requests)
        for record in report.records:
            assert record.latency_ms > 0
            assert record.queue_delay_ms >= 0
            assert record.executed_batch_size in BATCH_SIZES
            assert record.completion_ms > record.request.arrival_ms

        # Aggregate throughput and latency are reported and sane.
        assert report.throughput_rps > 0
        assert report.throughput_samples_per_s >= report.throughput_rps
        assert report.latency.p50_ms <= report.latency.p95_ms <= report.latency.max_ms
        assert report.makespan_ms > 0

        # Dynamic batching actually batched: far fewer executions than
        # requests, and multi-sample batches dominated.
        assert report.num_batches < len(requests) / 2
        assert report.mean_batch_occupancy > 1.5

        # Cold run: the registry compiled one schedule per rung per device
        # at most, not one per batch.
        assert 0 < service.registry.stats.searches <= len(BATCH_SIZES) * 2

    def test_second_run_performs_zero_scheduler_searches(self, tmp_path):
        requests = TrafficGenerator(traffic_config()).generate()

        cold = InferenceService(serving_config(tmp_path))
        cold_report = cold.run(requests)
        assert cold.registry.stats.searches > 0

        warm = InferenceService(serving_config(tmp_path))
        warm_report = warm.run(requests)
        assert warm.registry.stats.searches == 0, (
            "second run must reuse every persisted schedule"
        )
        assert warm.registry.stats.disk_hits == cold.registry.stats.searches

        # Identical workload + deterministic simulation ⇒ identical service.
        assert warm_report.throughput_rps == pytest.approx(cold_report.throughput_rps)
        assert warm_report.latency.p95_ms == pytest.approx(cold_report.latency.p95_ms)

    def test_registry_layout_is_stable_json(self, tmp_path):
        service = InferenceService(serving_config(tmp_path))
        service.warmup()
        files = sorted(p.name for p in (tmp_path / MODEL).glob("*.json"))
        # Every persisted key embeds the fingerprint of the graph it was
        # searched for (device__variant__bs<batch>__<fingerprint>.json).
        expected = sorted(
            f"v100__ios-both__bs{bs}__{service.registry.fingerprint_for(MODEL, bs)}.json"
            for bs in BATCH_SIZES
        )
        assert files == expected
        for bs in BATCH_SIZES:
            assert service.registry.key(MODEL, bs, "v100").filename() in files

    def test_run_serving_harness_round_trip(self, tmp_path):
        report = run_serving(
            traffic_config(), serving_config(tmp_path),
            registry=ScheduleRegistry(root=tmp_path),
        )
        assert report.num_requests == 250
        text = report.describe()
        assert "throughput" in text and "latency" in text
