"""Unit tests for the cost models and schedule lowering."""

from __future__ import annotations

import pytest

from repro.core import (
    FlopsCostModel,
    ParallelizationStrategy,
    SimulatedCostModel,
    greedy_schedule,
    lower_schedule,
    measure_schedule,
    schedule_latency_ms,
    schedule_throughput,
    sequential_schedule,
    stage_to_execution,
)
from repro.models import figure2_block
from repro.runtime import Executor

CONCURRENT = ParallelizationStrategy.CONCURRENT
MERGE = ParallelizationStrategy.MERGE


class TestSimulatedCostModel:
    def test_stage_latency_positive_and_cached(self, fig2, sim_cost_model):
        first = sim_cost_model.stage_latency(fig2, ["conv_a", "conv_c"], CONCURRENT)
        assert first > 0
        assert sim_cost_model.num_measurements == 1
        second = sim_cost_model.stage_latency(fig2, ["conv_c", "conv_a"], CONCURRENT)
        assert second == first
        assert sim_cost_model.num_measurements == 1  # cache hit (order-insensitive)
        assert sim_cost_model.cache_size() == 1
        sim_cost_model.clear_cache()
        assert sim_cost_model.cache_size() == 0

    def test_concurrent_stage_cheaper_than_two_sequential(self, fig2, sim_cost_model):
        pair = sim_cost_model.stage_latency(fig2, ["conv_a", "conv_c"], CONCURRENT)
        singles = sim_cost_model.stage_latency(fig2, ["conv_a"], CONCURRENT) + \
            sim_cost_model.stage_latency(fig2, ["conv_c"], CONCURRENT)
        assert pair < singles

    def test_generate_stage_picks_cheaper_strategy(self, fig2, sim_cost_model):
        choice = sim_cost_model.generate_stage(fig2, ["conv_c", "conv_d"])
        assert choice.strategy in (CONCURRENT, MERGE)
        both = {
            CONCURRENT: sim_cost_model.stage_latency(fig2, ["conv_c", "conv_d"], CONCURRENT),
            MERGE: sim_cost_model.stage_latency(fig2, ["conv_c", "conv_d"], MERGE),
        }
        assert choice.latency_ms == pytest.approx(min(both.values()))

    def test_generate_stage_merge_only_falls_back_when_unmergeable(self, fig2, sim_cost_model):
        # conv_a -> conv_b are not mergeable (different inputs); restricting the
        # strategies to MERGE must fall back to a sequential concurrent group,
        # exactly how IOS-Merge degenerates to Sequential.
        choice = sim_cost_model.generate_stage(fig2, ["conv_a", "conv_b"], strategies=[MERGE])
        assert choice.strategy is CONCURRENT
        assert choice.latency_ms > 0

    def test_generate_stage_respects_strategy_restriction(self, fig2, sim_cost_model):
        choice = sim_cost_model.generate_stage(fig2, ["conv_c", "conv_d"], strategies=[CONCURRENT])
        assert choice.strategy is CONCURRENT

    def test_batch_size_is_part_of_cache_key(self, sim_cost_model):
        graph1 = figure2_block(batch_size=1)
        graph8 = figure2_block(batch_size=8)
        lat1 = sim_cost_model.stage_latency(graph1, ["conv_a"], CONCURRENT)
        lat8 = sim_cost_model.stage_latency(graph8, ["conv_a"], CONCURRENT)
        assert lat8 > lat1


class TestFlopsCostModel:
    def test_latency_proportional_to_flops(self, fig2, flops_cost_model):
        lat_a = flops_cost_model.stage_latency(fig2, ["conv_a"], CONCURRENT)
        lat_b = flops_cost_model.stage_latency(fig2, ["conv_b"], CONCURRENT)
        flops_ratio = fig2.nodes["conv_b"].flops() / fig2.nodes["conv_a"].flops()
        assert (lat_b - 0.01) / (lat_a - 0.01) == pytest.approx(flops_ratio, rel=1e-6)

    def test_concurrent_groups_cost_max_not_sum(self, fig2, flops_cost_model):
        pair = flops_cost_model.stage_latency(fig2, ["conv_a", "conv_c"], CONCURRENT)
        single = flops_cost_model.stage_latency(fig2, ["conv_a"], CONCURRENT)
        assert pair == pytest.approx(single)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FlopsCostModel(flops_per_ms=0)


class TestStageToExecution:
    def test_concurrent_stage_groups(self, fig3):
        stage = stage_to_execution(fig3, ["conv_c", "conv_d", "matmul_e"], CONCURRENT)
        assert stage.num_groups == 2
        assert {op.name for group in stage.groups for op in group} == {"conv_c", "conv_d", "matmul_e"}

    def test_merge_stage_contains_single_merged_operator(self, fig3):
        stage = stage_to_execution(fig3, ["conv_a", "conv_b"], MERGE)
        assert stage.num_groups == 1
        assert len(stage.groups[0]) == 1
        assert stage.groups[0][0].name.startswith("merge(")


class TestLowering:
    def test_lowered_plan_latency_matches_measure(self, fig2, v100):
        schedule = greedy_schedule(fig2)
        plan = lower_schedule(fig2, schedule)
        direct = Executor(v100).run(plan).latency_ms
        assert measure_schedule(fig2, schedule, v100).latency_ms == pytest.approx(direct)
        assert schedule_latency_ms(fig2, schedule, v100) == pytest.approx(direct)

    def test_throughput_consistent_with_latency(self, fig2, v100):
        schedule = sequential_schedule(fig2)
        latency = schedule_latency_ms(fig2, schedule, v100)
        assert schedule_throughput(fig2, schedule, v100) == pytest.approx(1e3 / latency)

    def test_lowering_validates_schedule(self, fig2, v100):
        schedule = sequential_schedule(fig2)
        schedule.stages.pop()
        with pytest.raises(Exception):
            lower_schedule(fig2, schedule)

    def test_plan_stage_count_matches_schedule(self, fig2):
        schedule = greedy_schedule(fig2)
        plan = lower_schedule(fig2, schedule)
        assert plan.num_stages() == schedule.num_stages()
