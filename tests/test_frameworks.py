"""Unit tests for the simulated baseline frameworks and the IOS engine wrapper."""

from __future__ import annotations

import pytest

from repro.frameworks import (
    FRAMEWORK_REGISTRY,
    IOSEngine,
    TASOModel,
    TensorFlowModel,
    TensorRTModel,
    apply_elementwise_fusion_discount,
    count_fusable_elementwise,
    find_same_input_merge_sets,
    get_framework,
    list_frameworks,
    sequential_plan_with_merges,
)
from repro.models import build_model, figure2_block


class TestRegistry:
    def test_all_six_frameworks_registered(self):
        assert set(list_frameworks()) == {
            "tensorflow", "tensorflow-xla", "taso", "tvm-cudnn", "tvm-autotune", "tensorrt",
        }

    def test_aliases_and_errors(self):
        assert get_framework("TF").name == "tensorflow"
        assert get_framework("trt").name == "tensorrt"
        with pytest.raises(KeyError):
            get_framework("onnxruntime")

    def test_registry_classes_have_unique_names(self):
        assert len({cls.name for cls in FRAMEWORK_REGISTRY.values()}) == len(FRAMEWORK_REGISTRY)


class TestTransforms:
    def test_find_same_input_merge_sets_squeezenet(self):
        graph = build_model("squeezenet")
        merge_sets = find_same_input_merge_sets(graph)
        assert ["fire2_expand1x1", "fire2_expand3x3"] in merge_sets
        assert len(merge_sets) >= 8  # one per fire module

    def test_merge_plan_has_fewer_stages(self):
        graph = build_model("squeezenet")
        merged_plan = sequential_plan_with_merges(graph, "taso")
        assert merged_plan.num_stages() < len(graph.operators())
        assert any("merge(" in stage.label for stage in merged_plan.stages)

    def test_no_merges_on_figure2(self, fig2):
        # conv_a/c/d share the input but conv_b does not; only {a, c, d} subsets
        # with identical out-channel grouping qualify -- a and c do (384), d is 768
        # but still same merge key, so the whole triple merges.
        merge_sets = find_same_input_merge_sets(fig2)
        assert merge_sets == [["conv_a", "conv_c", "conv_d"]]

    def test_fusion_discount_removes_standalone_relu_add(self):
        graph = build_model("resnet_18")
        assert count_fusable_elementwise(graph) > 0
        from repro.frameworks.base import FrameworkModel
        from repro.hardware import CUDNN_PROFILE

        base = FrameworkModel(CUDNN_PROFILE)
        plan = base._sequential_plan(graph)
        fused = apply_elementwise_fusion_discount(plan, graph)
        assert fused.num_stages() < plan.num_stages()


class TestFrameworkOrdering:
    @pytest.fixture(scope="class")
    def inception_results(self, request):
        from repro.hardware import get_device

        device = get_device("v100")
        graph = build_model("inception_v3")
        return {name: get_framework(name).run(graph, device) for name in list_frameworks()}

    def test_all_frameworks_fit_in_memory_at_batch_one(self, inception_results):
        assert all(not r.out_of_memory for r in inception_results.values())

    def test_tensorflow_is_slowest_cudnn_framework(self, inception_results):
        tf = inception_results["tensorflow"].latency_ms
        for name in ("tensorflow-xla", "taso", "tvm-cudnn", "tensorrt"):
            assert tf > inception_results[name].latency_ms

    def test_xla_improves_on_plain_tensorflow(self, inception_results):
        assert inception_results["tensorflow-xla"].latency_ms < inception_results["tensorflow"].latency_ms

    def test_tensorrt_among_best_baselines(self, inception_results):
        trt = inception_results["tensorrt"].latency_ms
        assert trt < inception_results["tvm-cudnn"].latency_ms
        assert trt < inception_results["tensorflow-xla"].latency_ms

    def test_throughput_latency_consistency(self, inception_results):
        for result in inception_results.values():
            assert result.throughput == pytest.approx(1e3 / result.latency_ms)


class TestMemoryBehaviour:
    def test_taso_oom_at_batch_128_only(self, v100):
        graph = build_model("inception_v3")
        taso = TASOModel()
        assert not taso.run(graph.with_batch_size(64), v100).out_of_memory
        result128 = taso.run(graph.with_batch_size(128), v100)
        assert result128.out_of_memory
        assert result128.latency_ms == float("inf")
        assert result128.throughput == 0.0

    def test_other_frameworks_survive_batch_128(self, v100):
        graph = build_model("inception_v3").with_batch_size(128)
        for name in ("tensorrt", "tvm-cudnn", "tensorflow"):
            assert not get_framework(name).run(graph, v100).out_of_memory

    def test_latency_ms_raises_on_oom(self, v100):
        from repro.runtime import OutOfMemoryError

        graph = build_model("inception_v3").with_batch_size(128)
        with pytest.raises(OutOfMemoryError):
            TASOModel().latency_ms(graph, v100)


class TestOptimizationCost:
    def test_tvm_autotune_cost_scales_with_network(self):
        tvm = get_framework("tvm-autotune")
        small = tvm.optimization_cost_gpu_hours(build_model("squeezenet"))
        large = tvm.optimization_cost_gpu_hours(build_model("nasnet_a"))
        assert large > small > 0

    def test_other_frameworks_have_zero_cost(self):
        graph = build_model("squeezenet")
        assert TensorFlowModel().optimization_cost_gpu_hours(graph) == 0.0
        assert TensorRTModel().optimization_cost_gpu_hours(graph) == 0.0


class TestIOSEngine:
    def test_engine_beats_every_baseline_on_figure2_block(self, v100):
        graph = figure2_block()
        engine = IOSEngine()
        ios = engine.run(graph, v100)
        for name in list_frameworks():
            baseline = get_framework(name).run(graph, v100)
            assert ios.latency_ms < baseline.latency_ms

    def test_schedule_cache_reused(self, v100):
        graph = figure2_block()
        engine = IOSEngine()
        engine.run(graph, v100)
        measurements_after_first = engine.total_measurements
        engine.run(graph, v100)
        assert engine.total_measurements == measurements_after_first
        assert engine.optimization_cost_gpu_hours(graph) > 0
