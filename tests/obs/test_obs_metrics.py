"""Tests for the metrics registry: counters, gauges, histograms, export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    HISTOGRAM_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantiles_reference,
)


class TestCounter:
    def test_increments_default_to_one(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc()
        assert counter.value() == 2.0
        assert counter.total() == 2.0

    def test_labelled_series_are_independent(self):
        counter = Counter("rejects")
        counter.inc(reason="deadline")
        counter.inc(3.0, reason="capacity")
        assert counter.value(reason="deadline") == 1.0
        assert counter.value(reason="capacity") == 3.0
        assert counter.total() == 4.0

    def test_negative_increment_is_rejected(self):
        counter = Counter("requests")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1.0)

    def test_unset_series_reads_zero(self):
        assert Counter("requests").value(reason="missing") == 0.0

    def test_by_label_groups_totals(self):
        counter = Counter("executions")
        counter.inc(batch_size=1, device="v100")
        counter.inc(batch_size=4, device="v100")
        counter.inc(batch_size=4, device="k80")
        assert counter.by_label("batch_size") == {"1": 1.0, "4": 2.0}
        assert counter.by_label("device") == {"k80": 1.0, "v100": 2.0}


class TestGauge:
    def test_set_overwrites_and_add_adjusts(self):
        gauge = Gauge("queue.depth")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value() == 3.0

    def test_high_water_mark_survives_a_drop(self):
        gauge = Gauge("pool.size")
        gauge.set(2.0)
        gauge.set(6.0)
        gauge.set(1.0)
        assert gauge.value() == 1.0
        assert gauge.max() == 6.0

    def test_unset_series_reads_zero(self):
        gauge = Gauge("queue.depth")
        assert gauge.value() == 0.0
        assert gauge.max() == 0.0


class TestHistogram:
    VALUES = [3.2, 1.1, 8.9, 4.4, 4.4, 0.3, 12.0, 7.5, 2.2, 5.1]

    def observed(self) -> Histogram:
        histogram = Histogram("latency_ms")
        for value in self.VALUES:
            histogram.observe(value)
        return histogram

    def test_count_sum_and_values(self):
        histogram = self.observed()
        assert histogram.count() == len(self.VALUES)
        assert histogram.sum() == pytest.approx(sum(self.VALUES))
        assert histogram.values() == self.VALUES

    def test_quantiles_match_numpy_exactly(self):
        histogram = self.observed()
        for q in (0, 25, 50, 75, 95, 99, 100):
            assert histogram.quantile(q) == float(np.percentile(self.VALUES, q))

    def test_snapshot_arithmetic_matches_the_numpy_reference(self):
        snapshot = self.observed().snapshot()["series"][0]
        reference = quantiles_reference(self.VALUES)
        for q in HISTOGRAM_QUANTILES:
            assert snapshot[f"p{q:g}"] == reference[f"p{q:g}"]
        assert snapshot["count"] == len(self.VALUES)
        assert snapshot["sum"] == pytest.approx(float(np.sum(self.VALUES)))
        assert snapshot["min"] == min(self.VALUES)
        assert snapshot["max"] == max(self.VALUES)
        assert snapshot["mean"] == pytest.approx(float(np.mean(self.VALUES)))

    def test_quantile_of_empty_series_raises(self):
        with pytest.raises(ValueError, match="no observations"):
            Histogram("latency_ms").quantile(50)

    def test_out_of_range_percentile_raises(self):
        histogram = self.observed()
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            histogram.quantile(101)

    def test_labelled_series_keep_separate_distributions(self):
        histogram = Histogram("latency_ms")
        histogram.observe(1.0, device="v100")
        histogram.observe(9.0, device="k80")
        assert histogram.values(device="v100") == [1.0]
        assert histogram.values(device="k80") == [9.0]


class TestMetricsRegistry:
    def test_families_are_memoised_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("serve.executions")
        with pytest.raises(TypeError, match="is a counter, not a gauge"):
            registry.gauge("serve.executions")

    def test_names_are_sorted_and_membership_works(self):
        registry = MetricsRegistry()
        registry.gauge("z")
        registry.counter("a")
        assert registry.names() == ["a", "z"]
        assert "a" in registry
        assert "missing" not in registry
        assert registry.get("missing") is None

    def test_snapshot_is_insertion_order_independent(self):
        def populate(registry: MetricsRegistry, flipped: bool) -> MetricsRegistry:
            order = ["beta", "alpha"] if flipped else ["alpha", "beta"]
            for name in order:
                registry.counter(name).inc(2.0, kind=name)
            registry.histogram("lat").observe(1.5)
            return registry

        first = populate(MetricsRegistry(), flipped=False)
        second = populate(MetricsRegistry(), flipped=True)
        assert first.to_json() == second.to_json()

    def test_write_round_trips_through_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("requests").inc(7.0)
        target = registry.write(tmp_path / "nested" / "metrics.json")
        assert json.loads(target.read_text()) == registry.snapshot()

    def test_clear_empties_the_namespace(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.clear()
        assert len(registry) == 0
        assert registry.snapshot() == {}

    def test_description_backfills_once(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        assert registry.counter("requests", "total offered").description == "total offered"
        assert registry.counter("requests", "other").description == "total offered"


class TestSnapshotByteStability:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_ms")
        rng = np.random.default_rng(17)
        # Values chosen to produce non-terminating percentile interpolation:
        # without fixed-precision rounding these floats drift in their last
        # digits and the rendered JSON is not byte-reproducible.
        for value in rng.exponential(scale=7.0, size=301):
            histogram.observe(float(value))
        registry.counter("requests").inc(3.0)
        return registry

    def test_to_json_is_byte_identical_across_builds(self):
        assert self._populated().to_json() == self._populated().to_json()

    def test_quantiles_round_to_fixed_precision(self):
        from repro.obs import QUANTILE_DECIMALS

        series = self._populated().snapshot()["latency_ms"]["series"][0]
        for q in HISTOGRAM_QUANTILES:
            value = series[f"p{q:g}"]
            assert value == round(value, QUANTILE_DECIMALS)

    def test_snapshot_matches_the_reference_helper(self):
        registry = self._populated()
        histogram = registry.histogram("latency_ms")
        series = registry.snapshot()["latency_ms"]["series"][0]
        reference = quantiles_reference(histogram.values())
        for q in HISTOGRAM_QUANTILES:
            assert series[f"p{q:g}"] == reference[f"p{q:g}"]
