"""Tests for tail-based trace sampling: budgets, must-keeps, reservoirs."""

from __future__ import annotations

import pytest

from repro.obs import (
    SamplingConfig,
    SamplingTracer,
    parse_sampling_spec,
    validate_chrome_trace,
)
from repro.obs.export import chrome_trace


def _request(
    tracer: SamplingTracer,
    correlation: int,
    start_ms: float,
    latency_ms: float,
    *,
    deadline_ms: float | None = None,
    outcome: str = "completed",
) -> None:
    """Emit one request lifecycle the way the serving loop does."""
    name = f"request {correlation}"
    args = {"deadline_ms": deadline_ms} if deadline_ms is not None else {}
    tracer.async_begin(
        name, "serving/requests", correlation, start_ms,
        category="request", args=args,
    )
    tracer.async_end(
        name, "serving/requests", correlation, start_ms + latency_ms,
        category="request", args={"outcome": outcome},
    )


class TestSamplingConfig:
    def test_defaults_are_valid(self):
        config = SamplingConfig()
        assert config.max_records > 0
        assert config.keep_slo_miss and config.keep_rejected

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            SamplingConfig(max_records=0)
        with pytest.raises(ValueError):
            SamplingConfig(head_every=-1)
        with pytest.raises(ValueError):
            SamplingConfig(track_budget=0)

    def test_parse_spec_defaults_and_overrides(self):
        assert parse_sampling_spec("") == SamplingConfig()
        assert parse_sampling_spec("default") == SamplingConfig()
        config = parse_sampling_spec("budget=2000,head=50,track=100")
        assert config.max_records == 2000
        assert config.head_every == 50
        assert config.track_budget == 100

    def test_parse_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            parse_sampling_spec("rate=5")
        with pytest.raises(ValueError):
            parse_sampling_spec("budget=lots")


class TestTailSampling:
    def test_every_slo_miss_is_kept_under_a_tight_budget(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=10, head_every=0, track_budget=10)
        )
        misses = []
        for correlation in range(1, 101):
            # Every 10th request misses its 5ms deadline.
            missed = correlation % 10 == 0
            latency = 9.0 if missed else 1.0
            if missed:
                misses.append(correlation)
            _request(
                tracer, correlation, float(correlation), latency, deadline_ms=5.0
            )
        kept = {
            record.correlation
            for record in tracer.records
            if record.category == "request"
        }
        assert set(misses) <= kept
        meta = tracer.sampling_metadata()
        assert meta["requests"]["slo_miss_kept"] == len(misses)

    def test_every_rejection_is_kept(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=6, head_every=0, track_budget=10)
        )
        for correlation in range(1, 31):
            outcome = "rejected" if correlation % 7 == 0 else "completed"
            _request(tracer, correlation, float(correlation), 1.0, outcome=outcome)
        kept = {
            record.correlation
            for record in tracer.records
            if record.category == "request"
        }
        assert {7, 14, 21, 28} <= kept
        assert tracer.sampling_metadata()["requests"]["rejected_kept"] == 4

    def test_eviction_drops_the_fastest_discretionary_requests_first(self):
        # Budget of 6 records = 3 two-record groups.  When request 4 settles,
        # the fastest discretionary group (request 2) is the one evicted.
        tracer = SamplingTracer(
            SamplingConfig(max_records=6, head_every=0, track_budget=10)
        )
        for correlation, latency in [(1, 5.0), (2, 1.0), (3, 9.0), (4, 2.0)]:
            _request(tracer, correlation, 0.0, latency)
        kept = {
            record.correlation
            for record in tracer.records
            if record.category == "request"
        }
        assert kept == {1, 3, 4}

    def test_head_sampling_outranks_slower_discretionary_groups(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=4, head_every=10, track_budget=10)
        )
        _request(tracer, 10, 0.0, 1.0)  # head (10 % 10 == 0), fast
        _request(tracer, 11, 0.0, 50.0)  # slower, but not head
        _request(tracer, 12, 0.0, 60.0)  # forces one eviction
        kept = {
            record.correlation
            for record in tracer.records
            if record.category == "request"
        }
        # The non-head request 11 evicts despite being slower than the head.
        assert kept == {10, 12}
        assert tracer.sampling_metadata()["requests"]["head_kept"] == 1

    def test_peak_request_records_honours_the_budget(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=8, head_every=0, track_budget=10)
        )
        for correlation in range(1, 41):
            _request(tracer, correlation, float(correlation), 1.0)
        meta = tracer.sampling_metadata()
        assert meta["records"]["peak_request_records"] <= 8
        assert meta["requests"]["total"] == 40
        assert meta["requests"]["kept"] + meta["requests"]["dropped"] == 40

    def test_lifecycle_groups_keep_or_drop_atomically(self):
        # A dropped request loses both halves of its lifecycle, so async
        # begin/end pairs always stay balanced in the exported trace.
        tracer = SamplingTracer(
            SamplingConfig(max_records=2, head_every=0, track_budget=10)
        )
        _request(tracer, 1, 0.0, 1.0)
        _request(tracer, 2, 0.0, 9.0)
        kept = [r for r in tracer.records if r.category == "request"]
        assert {record.correlation for record in kept} == {2}
        assert len(kept) == 2
        assert validate_chrome_trace(chrome_trace(tracer)) == []

    def test_track_reservoir_bounds_non_request_records(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=100, head_every=0, track_budget=8)
        )
        for index in range(100):
            tracer.add_span(
                f"kernel {index}", "worker 0/stream 0",
                float(index), float(index) + 0.5, category="kernel",
            )
        spans = [r for r in tracer.records if r.category == "kernel"]
        assert len(spans) <= 8
        assert tracer.sampling_metadata()["records"]["dropped"] >= 92

    def test_alert_and_autoscale_instants_are_exempt(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=2, head_every=0, track_budget=2)
        )
        for index in range(20):
            tracer.instant(
                f"alert rule-{index}", "serving/alerts", float(index),
                category="alert",
            )
            tracer.instant(
                "scale up", "serving/autoscale", float(index),
                category="autoscale",
            )
        categories = [record.category for record in tracer.records]
        assert categories.count("alert") == 20
        assert categories.count("autoscale") == 20

    def test_records_merge_in_emission_order(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=100, head_every=1, track_budget=100)
        )
        tracer.instant("before", "serving/admission", 0.0, category="admission")
        _request(tracer, 1, 1.0, 1.0)
        tracer.instant("after", "serving/admission", 3.0, category="admission")
        names = [record.name for record in tracer.records]
        assert names == ["before", "request 1", "request 1", "after"]

    def test_clear_resets_all_state(self):
        tracer = SamplingTracer(SamplingConfig(max_records=10))
        _request(tracer, 1, 0.0, 1.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.records == []
        assert tracer.sampling_metadata()["requests"]["total"] == 0
