"""Tests for the Chrome-trace exporter and its schema validator."""

from __future__ import annotations

import json

from repro.obs import Tracer, chrome_trace, chrome_trace_json, validate_chrome_trace
from repro.obs.export import write_chrome_trace


def sample_tracer() -> Tracer:
    """A small trace exercising every record kind across three tracks."""
    tracer = Tracer()
    tracer.add_span("schedule", "compile/stages", 0.0, 2.5,
                    category="compile", args={"graph": "toy"})
    tracer.instant("batch-close", "serving/loop", ts_ms=4.0, category="batch")
    tracer.counter("queue depth", "serving/loop", 4.0, {"requests": 3.0})
    tracer.async_begin("request 1", "serving/requests", 1, 1.0, category="request")
    tracer.async_end("request 1", "serving/requests", 1, 6.0, category="request")
    tracer.add_span("conv", "worker 0 (v100)/stream 0", 4.5, 5.5, category="kernel")
    return tracer


def events_of(document: dict, phase: str) -> list[dict]:
    return [event for event in document["traceEvents"] if event["ph"] == phase]


class TestChromeTrace:
    def test_document_shape_and_track_count(self):
        document = chrome_trace(sample_tracer())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["generator"] == "repro.obs"
        # compile/stages, serving/loop, serving/requests, worker 0 (v100)/stream 0
        assert document["otherData"]["trackCount"] == 4

    def test_times_convert_to_microseconds(self):
        document = chrome_trace(sample_tracer())
        (span,) = [e for e in events_of(document, "X") if e["name"] == "schedule"]
        assert span["ts"] == 0.0
        assert span["dur"] == 2500.0
        (instant,) = events_of(document, "i")
        assert instant["ts"] == 4000.0
        assert instant["s"] == "t"

    def test_rows_share_a_pid_per_process(self):
        document = chrome_trace(sample_tracer())
        names = {}
        for event in events_of(document, "M"):
            if event["name"] == "process_name":
                names[event["args"]["name"]] = event["pid"]
        assert set(names) == {"compile", "serving", "worker 0 (v100)"}
        instant, counter = events_of(document, "i") + events_of(document, "C")
        begin = events_of(document, "b")[0]
        # serving/loop and serving/requests share the serving pid on
        # different tids.
        assert instant["pid"] == counter["pid"] == begin["pid"] == names["serving"]
        assert instant["tid"] != begin["tid"]

    def test_async_pair_keeps_category_and_id(self):
        document = chrome_trace(sample_tracer())
        (begin,) = events_of(document, "b")
        (end,) = events_of(document, "e")
        assert begin["cat"] == end["cat"] == "request"
        assert begin["id"] == end["id"] == 1

    def test_rendering_is_byte_deterministic(self):
        assert chrome_trace_json(sample_tracer()) == chrome_trace_json(sample_tracer())

    def test_write_creates_parents_and_round_trips(self, tmp_path):
        target = write_chrome_trace(sample_tracer(), tmp_path / "deep" / "t.json")
        data = json.loads(target.read_text())
        assert validate_chrome_trace(data) == []


class TestValidateChromeTrace:
    def test_exported_traces_pass(self):
        assert validate_chrome_trace(chrome_trace(sample_tracer())) == []

    def test_non_object_documents_fail(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_empty_event_list_fails(self):
        (error,) = validate_chrome_trace({"traceEvents": []})
        assert "empty" in error

    def test_unknown_phase_is_reported(self):
        document = chrome_trace(sample_tracer())
        document["traceEvents"][-1]["ph"] = "Z"
        assert any("unknown phase" in e for e in validate_chrome_trace(document))

    def test_span_without_duration_is_reported(self):
        document = chrome_trace(sample_tracer())
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                del event["dur"]
        assert any("dur" in e for e in validate_chrome_trace(document))

    def test_unbalanced_async_pairs_are_reported(self):
        document = chrome_trace(sample_tracer())
        document["traceEvents"] = [
            event for event in document["traceEvents"] if event["ph"] != "e"
        ]
        assert any("never closed" in e for e in validate_chrome_trace(document))

    def test_unnamed_rows_are_reported(self):
        document = chrome_trace(sample_tracer())
        document["traceEvents"] = [
            event for event in document["traceEvents"]
            if not (event["ph"] == "M" and event["name"] == "thread_name")
        ]
        assert any("thread_name" in e for e in validate_chrome_trace(document))
