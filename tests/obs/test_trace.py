"""Tests for the span tracer and its disabled (null) form."""

from __future__ import annotations

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.trace import ASYNC_BEGIN, ASYNC_END, COUNTER, INSTANT, SPAN


def ticking_clock(step: float = 1.0):
    """A deterministic wall clock advancing ``step`` ms per reading."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


class TestTracer:
    def test_add_span_records_explicit_virtual_times(self):
        tracer = Tracer()
        tracer.add_span("execute", "worker 0/batches", 10.0, 14.5,
                        category="batch", args={"batch_size": 4})
        (record,) = tracer.records
        assert record.kind == SPAN
        assert record.ts_ms == 10.0
        assert record.dur_ms == 4.5
        assert record.end_ms == 14.5
        assert record.args == {"batch_size": 4}

    def test_span_duration_never_goes_negative(self):
        tracer = Tracer()
        tracer.add_span("odd", "main", 5.0, 3.0)
        assert tracer.records[0].dur_ms == 0.0

    def test_context_managed_span_measures_the_injected_clock(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("schedule", "compile/stages") as info:
            info["transitions"] = 12
        (record,) = tracer.records
        # Clock readings: epoch=1, start=2, end=3 → span [1.0, 2.0).
        assert record.ts_ms == 1.0
        assert record.dur_ms == 1.0
        assert record.args == {"transitions": 12}

    def test_span_records_even_when_the_block_raises(self):
        tracer = Tracer(clock=ticking_clock())
        try:
            with tracer.span("doomed", "compile/stages"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer) == 1

    def test_instant_defaults_to_now_and_accepts_explicit_times(self):
        tracer = Tracer(clock=ticking_clock())
        tracer.instant("implicit", "serving/loop")
        tracer.instant("explicit", "serving/loop", ts_ms=42.0)
        implicit, explicit = tracer.records
        assert implicit.kind == INSTANT
        assert implicit.ts_ms == 1.0  # one tick past the epoch
        assert explicit.ts_ms == 42.0

    def test_counter_and_async_records_carry_their_payloads(self):
        tracer = Tracer()
        tracer.counter("queue depth", "serving/loop", 3.0, {"requests": 2})
        tracer.async_begin("request 7", "serving/requests", 7, 1.0,
                           category="request")
        tracer.async_end("request 7", "serving/requests", 7, 9.0,
                         category="request")
        counter, begin, end = tracer.records
        assert counter.kind == COUNTER and counter.args == {"requests": 2}
        assert begin.kind == ASYNC_BEGIN and begin.correlation == 7
        assert end.kind == ASYNC_END and end.ts_ms == 9.0

    def test_spans_filter_by_track(self):
        tracer = Tracer()
        tracer.add_span("a", "compile/stages", 0.0, 1.0)
        tracer.add_span("b", "serving/loop", 0.0, 1.0)
        tracer.instant("not-a-span", "compile/stages")
        assert [span.name for span in tracer.spans()] == ["a", "b"]
        assert [span.name for span in tracer.spans("compile/stages")] == ["a"]

    def test_tracks_list_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.add_span("a", "serving/loop", 0.0, 1.0)
        tracer.add_span("b", "compile/stages", 0.0, 1.0)
        tracer.add_span("c", "serving/loop", 1.0, 2.0)
        assert tracer.tracks() == ["serving/loop", "compile/stages"]

    def test_clear_drops_records_and_restarts_the_clock(self):
        tracer = Tracer(clock=ticking_clock())
        tracer.instant("before", "main")
        first_now = tracer.now_ms()
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.now_ms() < first_now

    def test_tracer_is_truthy_and_enabled(self):
        tracer = Tracer()
        assert tracer
        assert tracer.enabled


class TestNullTracer:
    def test_is_falsy_and_disabled(self):
        assert not NULL_TRACER
        assert not NULL_TRACER.enabled
        assert isinstance(NULL_TRACER, NullTracer)

    def test_swallows_every_recording_call(self):
        tracer = NullTracer()
        tracer.add_span("a", "main", 0.0, 1.0)
        tracer.instant("b", "main")
        tracer.counter("c", "main", 0.0, {"x": 1})
        tracer.async_begin("d", "main", 1, 0.0)
        tracer.async_end("d", "main", 1, 1.0)
        with tracer.span("e", "main") as info:
            info["ignored"] = True
        assert len(tracer) == 0
        assert tracer.records == []

    def test_guard_pattern_skips_all_work(self):
        # The instrumentation idiom: one truth test, zero records.
        tracer = NULL_TRACER
        touched = []
        if tracer:
            touched.append("traced")  # pragma: no cover - must not run
        assert touched == []
