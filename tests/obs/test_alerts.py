"""Tests for alert rules: thresholds, burn rate, the manager's transitions."""

from __future__ import annotations

import pytest

from repro.obs import (
    AlertManager,
    BurnRateRule,
    QueueSaturationRule,
    ThresholdRule,
    TimeSeriesRegistry,
    alerts_snapshot,
    default_alert_rules,
    parse_alert_rules,
)


def _slo_window(registry: TimeSeriesRegistry, met: float, missed: float) -> None:
    """Record one window's worth of SLO outcomes, then advance past it."""
    if met:
        registry.counter("serve.slo.met").inc(met)
    if missed:
        registry.counter("serve.slo.missed").inc(missed)
    registry.advance(registry.now_ms + registry.window_ms)


class TestThresholdRule:
    def test_counter_sum_breaches_above_threshold(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        registry.counter("errors").inc(5.0)
        rule = ThresholdRule("errors-high", "errors", "sum", 3.0)
        assert rule.observe(registry, registry.window_span(0)) == 5.0

    def test_missing_metric_never_breaches(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        rule = ThresholdRule("ghost", "absent", "sum", 0.0)
        assert rule.observe(registry, registry.window_span(0)) is None

    def test_for_windows_requires_a_streak(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        histogram = registry.histogram("serve.latency_ms")
        rule = ThresholdRule(
            "p99-latency", "serve.latency_ms", "p99", 20.0, for_windows=2
        )
        histogram.observe(30.0)
        registry.advance(10.0)
        assert rule.observe(registry, registry.window_span(0)) is None  # streak 1
        histogram.observe(35.0)
        registry.advance(20.0)
        assert rule.observe(registry, registry.window_span(1)) is not None
        histogram.observe(5.0)
        registry.advance(30.0)
        # A clean window resets the streak.
        assert rule.observe(registry, registry.window_span(2)) is None

    def test_gauge_max_stat_and_operator(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        gauge = registry.gauge("depth")
        gauge.set(31.0)
        gauge.set(4.0)
        at_31 = ThresholdRule("sat", "depth", "max", 31.0, op=">=")
        above_31 = ThresholdRule("sat", "depth", "max", 31.0, op=">")
        span = registry.window_span(0)
        assert at_31.observe(registry, span) == 31.0
        assert above_31.observe(registry, span) is None

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError, match="comparison"):
            ThresholdRule("x", "m", "sum", 1.0, op="!=")


class TestBurnRateRule:
    def test_fires_only_when_both_spans_burn(self):
        # Target 0.9 -> error budget 10%; factor 2 fires at >= 20% misses.
        registry = TimeSeriesRegistry(window_ms=10.0)
        rule = BurnRateRule("burn", 0.9, short_windows=2, long_windows=4)
        for window in range(4):
            _slo_window(registry, met=9.0, missed=1.0)  # burn 1.0: healthy
            assert rule.observe(registry, registry.window_span(window)) is None
        # Two hot windows push the short span over 2x, but the long span
        # still remembers the healthy tail.
        _slo_window(registry, met=7.0, missed=3.0)
        assert rule.observe(registry, registry.window_span(4)) is None
        _slo_window(registry, met=5.0, missed=5.0)
        value = rule.observe(registry, registry.window_span(5))
        assert value is not None and value >= 2.0

    def test_firing_and_resolution_are_deterministic(self):
        def run() -> list[tuple[str, float]]:
            registry = TimeSeriesRegistry(window_ms=10.0)
            manager = AlertManager(
                [BurnRateRule("burn", 0.9, short_windows=1, long_windows=2)]
            )
            outcomes = [(10, 0), (5, 5), (4, 6), (9, 1), (10, 0), (10, 0)]
            events = []
            for window, (met, missed) in enumerate(outcomes):
                _slo_window(registry, met, missed)
                events += manager.evaluate(registry, registry.window_span(window))
            return [(event.state, event.time_ms) for event in events]

        first, second = run(), run()
        assert first == second
        assert first == [("firing", 20.0), ("resolved", 40.0)]

    def test_empty_spans_do_not_breach(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        rule = BurnRateRule("burn", 0.9)
        registry.advance(10.0)
        assert rule.observe(registry, registry.window_span(0)) is None

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            BurnRateRule("burn", 1.0)
        with pytest.raises(ValueError, match="windows"):
            BurnRateRule("burn", 0.9, short_windows=3, long_windows=2)


class TestAlertManager:
    def _registry_with_queue(self, depth: float) -> TimeSeriesRegistry:
        registry = TimeSeriesRegistry(window_ms=10.0)
        registry.gauge("serve.queue.depth").set(depth)
        return registry

    def test_transitions_fire_once_per_state_change(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        manager = AlertManager(
            [ThresholdRule("errors-high", "errors", "sum", 0.0)]
        )
        counter = registry.counter("errors")
        events = []
        for window in range(3):
            counter.inc()
            registry.advance((window + 1) * 10.0)
            events += manager.evaluate(registry, registry.window_span(window))
        registry.advance(40.0)
        events += manager.evaluate(registry, registry.window_span(3))
        assert [event.state for event in events] == ["firing", "resolved"]
        assert manager.firing() == []
        assert len(manager) == 2

    def test_firing_lists_rules_in_declaration_order(self):
        registry = self._registry_with_queue(40.0)
        registry.counter("errors").inc()
        manager = AlertManager(
            [
                ThresholdRule("a-errors", "errors", "sum", 0.0),
                QueueSaturationRule("b-queue", 32.0, for_windows=1),
            ]
        )
        manager.evaluate(registry, registry.window_span(0))
        assert manager.firing() == ["a-errors", "b-queue"]

    def test_reset_clears_state_and_streaks(self):
        registry = self._registry_with_queue(40.0)
        manager = AlertManager([QueueSaturationRule("queue", 32.0, for_windows=1)])
        manager.evaluate(registry, registry.window_span(0))
        assert manager.firing() == ["queue"]
        manager.reset()
        assert manager.firing() == []
        assert manager.events == []

    def test_snapshot_is_round_trippable(self):
        registry = self._registry_with_queue(40.0)
        manager = AlertManager([QueueSaturationRule("queue", 32.0, for_windows=1)])
        manager.evaluate(registry, registry.window_span(0))
        snapshot = alerts_snapshot(manager.events)
        assert snapshot[0]["rule"] == "queue"
        assert snapshot[0]["state"] == "firing"
        assert snapshot == alerts_snapshot(manager.events)


class TestRuleSpecs:
    def test_default_rules_without_slo(self):
        rules = default_alert_rules()
        assert [rule.name for rule in rules] == ["slo-burn-rate", "queue-saturation"]

    def test_default_rules_with_slo_add_p99(self):
        rules = default_alert_rules(slo_ms=25.0)
        assert [rule.name for rule in rules] == [
            "slo-burn-rate", "queue-saturation", "p99-latency",
        ]
        assert rules[2].threshold == 25.0

    def test_empty_and_default_specs_match_the_default_set(self):
        for spec in ("", "default"):
            rules = parse_alert_rules(spec, slo_ms=20.0)
            assert [rule.name for rule in rules] == [
                "slo-burn-rate", "queue-saturation", "p99-latency",
            ]

    def test_explicit_spec_builds_each_rule(self):
        rules = parse_alert_rules("burn-rate=0.9,queue=16,p99=25")
        assert isinstance(rules[0], BurnRateRule)
        assert rules[0].target == 0.9
        assert isinstance(rules[1], QueueSaturationRule)
        assert rules[1].threshold == 16.0
        assert rules[2].threshold == 25.0

    def test_unknown_key_and_bad_number_raise(self):
        with pytest.raises(ValueError, match="unknown alert rule"):
            parse_alert_rules("latency=1")
        with pytest.raises(ValueError, match="not a number"):
            parse_alert_rules("queue=lots")
