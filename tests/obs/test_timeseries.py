"""Tests for windowed time series: sketches, window bucketing, the registry."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    StreamingQuantile,
    TimeSeriesRegistry,
    WatchRenderer,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)


class TestStreamingQuantile:
    def test_exact_while_under_the_bin_budget(self):
        sketch = StreamingQuantile(max_bins=8)
        for value in (5.0, 1.0, 3.0):
            sketch.observe(value)
        assert sketch.quantile(0) == 1.0
        assert sketch.quantile(100) == 5.0
        assert sketch.count == 3
        assert sketch.sum == 9.0
        assert sketch.mean == 3.0

    def test_accuracy_vs_numpy_on_seeded_data(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(scale=10.0, size=5000)
        sketch = StreamingQuantile(max_bins=64)
        for value in values:
            sketch.observe(float(value))
        for q in (50, 90, 95, 99):
            exact = float(np.percentile(values, q))
            assert sketch.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_min_max_count_sum_are_exact_past_compaction(self):
        rng = np.random.default_rng(3)
        values = rng.normal(100.0, 15.0, size=2000)
        sketch = StreamingQuantile(max_bins=32)
        for value in values:
            sketch.observe(float(value))
        assert len(sketch) <= 32
        assert sketch.min == float(values.min())
        assert sketch.max == float(values.max())
        assert sketch.count == 2000
        assert sketch.sum == pytest.approx(float(values.sum()))
        assert sketch.quantile(0) == sketch.min
        assert sketch.quantile(100) == sketch.max

    def test_merge_matches_the_pooled_distribution(self):
        rng = np.random.default_rng(11)
        left = rng.exponential(scale=5.0, size=1500)
        right = rng.exponential(scale=20.0, size=1500)
        a, b = StreamingQuantile(max_bins=64), StreamingQuantile(max_bins=64)
        for value in left:
            a.observe(float(value))
        for value in right:
            b.observe(float(value))
        merged = a.copy().merge(b)
        pooled = np.concatenate([left, right])
        assert merged.count == 3000
        assert merged.min == float(pooled.min())
        assert merged.max == float(pooled.max())
        for q in (50, 95):
            exact = float(np.percentile(pooled, q))
            assert merged.quantile(q) == pytest.approx(exact, rel=0.08)

    def test_identical_streams_give_identical_quantiles(self):
        # The compaction rule is deterministic (closest pair, lowest index on
        # ties), so two sketches fed the same stream agree bit-for-bit.
        rng = np.random.default_rng(5)
        values = [float(v) for v in rng.uniform(0.0, 50.0, size=1000)]
        a, b = StreamingQuantile(max_bins=16), StreamingQuantile(max_bins=16)
        for value in values:
            a.observe(value)
            b.observe(value)
        assert a._centroids == b._centroids
        assert a._weights == b._weights
        assert a.quantile(99) == b.quantile(99)

    def test_empty_sketch_quantile_raises(self):
        with pytest.raises(ValueError, match="empty"):
            StreamingQuantile().quantile(50)

    def test_out_of_range_percentile_raises(self):
        sketch = StreamingQuantile()
        sketch.observe(1.0)
        with pytest.raises(ValueError, match="percentile"):
            sketch.quantile(101)

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError, match="bins"):
            StreamingQuantile(max_bins=1)


class TestWindowBucketing:
    def test_observation_at_the_boundary_lands_in_the_next_window(self):
        registry = TimeSeriesRegistry(window_ms=50.0)
        counter = registry.counter("hits")
        counter.inc()  # now_ms == 0.0 -> window 0
        registry.advance(49.999)
        counter.inc()  # still window 0: [0, 50)
        closed = registry.advance(50.0)
        assert [span.index for span in closed] == [0]
        counter.inc()  # exactly at 50.0 -> window 1: [50, 100)
        assert counter.window_total(0) == 2.0
        assert counter.window_total(1) == 1.0

    def test_window_spans_are_half_open(self):
        registry = TimeSeriesRegistry(window_ms=20.0)
        span = registry.window_span(3)
        assert span.start_ms == 60.0
        assert span.end_ms == 80.0
        assert span.duration_ms == 20.0
        assert registry.window_index(59.999) == 2
        assert registry.window_index(60.0) == 3

    def test_advance_returns_every_skipped_window(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        closed = registry.advance(35.0)
        assert [span.index for span in closed] == [0, 1, 2]
        assert registry.advance(35.0) == []

    def test_advance_never_moves_backwards(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        registry.advance(25.0)
        assert registry.advance(5.0) == []
        assert registry.now_ms == 25.0

    def test_idle_gap_closes_at_most_max_windows(self):
        registry = TimeSeriesRegistry(window_ms=1.0, max_windows=4)
        closed = registry.advance(1000.0)
        assert len(closed) == 4
        assert [span.index for span in closed] == [996, 997, 998, 999]

    def test_flush_closes_the_partial_window(self):
        registry = TimeSeriesRegistry(window_ms=50.0)
        counter = registry.counter("hits")
        registry.advance(60.0)
        counter.inc()
        span = registry.flush()
        assert span.index == 1
        assert counter.window_total(1) == 1.0

    def test_ring_evicts_the_oldest_window(self):
        registry = TimeSeriesRegistry(window_ms=1.0, max_windows=3)
        counter = registry.counter("hits")
        for index in range(5):
            registry.advance(float(index))
            counter.inc()
        series = counter.window_series()
        assert series.indices() == [2, 3, 4]
        assert counter.window_total(0) == 0.0
        assert counter.window_total(4) == 1.0

    def test_windowed_families_replace_the_plain_kinds(self):
        registry = TimeSeriesRegistry()
        assert isinstance(registry.counter("c"), WindowedCounter)
        assert isinstance(registry.gauge("g"), WindowedGauge)
        assert isinstance(registry.histogram("h"), WindowedHistogram)

    def test_cumulative_view_is_unchanged(self):
        # The windowed families still behave as their plain base kind, so
        # existing call sites and reports read the same totals.
        plain = MetricsRegistry()
        windowed = TimeSeriesRegistry(window_ms=10.0)
        for registry in (plain, windowed):
            counter = registry.counter("serve.requests", "arrivals")
            counter.inc(3.0, model="a")
            counter.inc(model="b")
            registry.histogram("latency").observe(5.0)
        assert plain.counter("serve.requests").total() == 4.0
        assert windowed.counter("serve.requests").total() == 4.0
        assert plain.histogram("latency").count() == 1
        assert windowed.histogram("latency").count() == 1

    def test_counter_rate_normalises_by_window_width(self):
        registry = TimeSeriesRegistry(window_ms=20.0)
        counter = registry.counter("hits")
        counter.inc(10.0)
        assert counter.window_rate(0) == pytest.approx(500.0)  # 10 per 20ms

    def test_gauge_tracks_last_and_max_per_window(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.set(9.0)
        gauge.set(2.0)
        assert gauge.window_last(0) == 2.0
        assert gauge.window_max(0) == 9.0
        assert gauge.window_last(1) is None

    def test_histogram_window_quantile_reads_one_window(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        histogram = registry.histogram("latency")
        histogram.observe(1.0)
        registry.advance(10.0)
        histogram.observe(100.0)
        assert histogram.window_quantile(0, 50) == 1.0
        assert histogram.window_quantile(1, 50) == 100.0
        assert histogram.window_quantile(5, 50) is None

    def test_window_snapshot_is_deterministic(self):
        registry = TimeSeriesRegistry(window_ms=10.0)
        registry.counter("hits").inc(model="a")
        registry.histogram("latency").observe(4.0)
        registry.advance(10.0)
        registry.counter("hits").inc(model="a")
        first = registry.window_snapshot()
        second = registry.window_snapshot()
        assert first == second
        assert first["hits"]["type"] == "counter"
        windows = first["hits"]["series"][0]["windows"]
        assert [w["index"] for w in windows] == [0, 1]


class TestWatchRenderer:
    def _overloaded_registry(self) -> TimeSeriesRegistry:
        registry = TimeSeriesRegistry(window_ms=20.0)
        registry.counter("serve.requests.offered").inc(10.0)
        registry.histogram("serve.latency_ms").observe(18.0)
        registry.gauge("serve.queue.depth").set(6.0)
        registry.counter("serve.slo.met").inc(7.0)
        registry.counter("serve.slo.missed").inc(3.0)
        return registry

    def test_dashboard_line_carries_the_headline_numbers(self):
        registry = self._overloaded_registry()
        stream = io.StringIO()
        line = WatchRenderer(stream=stream).emit(
            registry, registry.window_span(0), firing=["slo-burn-rate"]
        )
        assert "rps" in line and "p99" in line
        assert "slo  70.0%" in line
        assert "ALERTS: slo-burn-rate" in line
        assert stream.getvalue().strip() == line

    def test_empty_window_prints_nothing(self):
        registry = TimeSeriesRegistry(window_ms=20.0)
        stream = io.StringIO()
        assert WatchRenderer(stream=stream).emit(
            registry, registry.window_span(0)
        ) is None
        assert stream.getvalue() == ""

    def test_every_skips_intermediate_windows(self):
        registry = self._overloaded_registry()
        stream = io.StringIO()
        renderer = WatchRenderer(stream=stream, every=2)
        span = registry.window_span(0)
        assert renderer.emit(registry, span) is not None
        assert renderer.emit(registry, span) is None
        assert renderer.emit(registry, span) is not None
