"""Unit tests for the multi-stream contention simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware import (
    StagePlacement,
    build_kernel,
    get_device,
    run_stage_placement,
    simulate_streams,
    waterfill_allocation,
)
from repro.ir.ops import Conv2d
from repro.ir.tensor import TensorShape


def conv_kernel(device, out_channels=384, name="c", batch=1):
    conv = Conv2d(name, ["x"], out_channels=out_channels, kernel=3)
    conv.bind([TensorShape(batch, 384, 15, 15)])
    return build_kernel(conv, device)


class TestWaterfill:
    def test_under_subscription_gives_full_demand(self):
        assert waterfill_allocation([10, 20], 100) == [10.0, 20.0]

    def test_over_subscription_fair_share(self):
        allocation = waterfill_allocation([100, 100], 100)
        assert allocation == [50.0, 50.0]

    def test_small_demand_satisfied_first(self):
        allocation = waterfill_allocation([10, 1000], 100)
        assert allocation[0] == 10.0
        assert allocation[1] == pytest.approx(90.0)

    def test_total_never_exceeds_capacity(self):
        allocation = waterfill_allocation([7, 13, 29, 500], 40)
        assert sum(allocation) <= 40 + 1e-9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            waterfill_allocation([1, 2], 0)
        with pytest.raises(ValueError):
            waterfill_allocation([0, 2], 10)

    def test_empty_demands(self):
        assert waterfill_allocation([], 10) == []

    @given(
        demands=st.lists(st.integers(1, 500), min_size=1, max_size=8),
        capacity=st.integers(1, 400),
    )
    def test_waterfill_properties(self, demands, capacity):
        allocation = waterfill_allocation(demands, capacity)
        assert len(allocation) == len(demands)
        assert sum(allocation) <= capacity + 1e-6
        for got, want in zip(allocation, demands):
            assert -1e-9 <= got <= want + 1e-9
        # Work-conserving: either everyone is satisfied or capacity is exhausted.
        if sum(demands) >= capacity:
            assert sum(allocation) == pytest.approx(capacity)
        else:
            assert allocation == pytest.approx(list(map(float, demands)))


class TestSingleKernelSimulation:
    def test_single_kernel_matches_closed_form(self, v100):
        kernel = conv_kernel(v100)
        result = simulate_streams([[kernel]], v100)
        assert result.latency_ms == pytest.approx(kernel.duration_alone_ms(v100), rel=1e-6)

    def test_empty_streams(self, v100):
        assert simulate_streams([], v100).latency_ms == 0.0
        assert simulate_streams([[], []], v100).latency_ms == 0.0

    def test_execution_record(self, v100):
        kernel = conv_kernel(v100)
        result = simulate_streams([[kernel]], v100)
        execution = result.execution_of("c")
        assert execution.launch_start_ms == 0.0
        assert execution.start_ms == pytest.approx(kernel.launch_overhead_ms)
        assert execution.end_ms == pytest.approx(result.latency_ms)
        with pytest.raises(KeyError):
            result.execution_of("missing")

    def test_trace_recording(self, v100):
        kernel = conv_kernel(v100)
        with_trace = simulate_streams([[kernel]], v100, record_trace=True)
        without = simulate_streams([[kernel]], v100, record_trace=False)
        assert without.timeline == []
        assert with_trace.timeline
        assert with_trace.average_active_warps() > 0
        # 48 blocks x 8 warps/block resident while the kernel runs.
        assert max(seg.active_warps for seg in with_trace.timeline) == 48 * 8


class TestMultiStreamBehaviour:
    def test_two_small_kernels_overlap(self, v100):
        a = conv_kernel(v100, 384, "a")
        b = conv_kernel(v100, 384, "b")
        concurrent = simulate_streams([[a], [b]], v100).latency_ms
        sequential = simulate_streams([[a, b]], v100).latency_ms
        # Two 30%-occupancy kernels fit side by side: concurrent execution is
        # much faster than the back-to-back run but slower than a single kernel
        # (memory contention).
        assert concurrent < 0.7 * sequential
        assert concurrent >= simulate_streams([[a]], v100).latency_ms

    def test_fifo_order_within_stream(self, v100):
        a = conv_kernel(v100, 384, "a")
        b = conv_kernel(v100, 384, "b")
        result = simulate_streams([[a, b]], v100)
        assert result.execution_of("a").end_ms <= result.execution_of("b").start_ms + 1e-9

    def test_oversubscription_contention_penalty(self, v100):
        # Three 768-channel convolutions oversubscribe the 160 slots; with the
        # contention term the concurrent latency exceeds the ideal work-conserving
        # bound but stays below fully sequential execution.
        kernels = [conv_kernel(v100, 768, f"k{i}") for i in range(3)]
        concurrent = simulate_streams([[k] for k in kernels], v100).latency_ms
        sequential = simulate_streams([kernels], v100).latency_ms
        # Ideal work-conserving bound: all FLOPs at full-device rate, no
        # launch/contention overheads.
        total_flops = sum(k.flops for k in kernels)
        ideal = total_flops / (v100.peak_flops_per_ms * kernels[0].efficiency)
        assert concurrent < sequential
        assert concurrent > ideal

    def test_contention_alpha_zero_removes_penalty(self, v100):
        no_contention = v100.scaled(contention_alpha=0.0)
        kernels = [conv_kernel(no_contention, 384, f"k{i}") for i in range(2)]
        with_contention = simulate_streams([[k] for k in kernels], v100).latency_ms
        without = simulate_streams([[k] for k in kernels], no_contention).latency_ms
        assert without <= with_contention

    def test_more_streams_than_work_is_not_faster_than_device_limit(self, v100):
        kernels = [conv_kernel(v100, 384, f"k{i}") for i in range(8)]
        concurrent = simulate_streams([[k] for k in kernels], v100).latency_ms
        total_flops = sum(k.flops for k in kernels)
        ideal_compute = total_flops / (v100.peak_flops_per_ms * 0.92)
        assert concurrent >= ideal_compute

    def test_weak_device_suffers_more_from_concurrency(self, v100, k80):
        kernels_v100 = [conv_kernel(v100, 768, f"k{i}") for i in range(4)]
        kernels_k80 = [conv_kernel(k80, 768, f"k{i}") for i in range(4)]
        v100_ratio = (
            simulate_streams([[k] for k in kernels_v100], v100).latency_ms
            / simulate_streams([kernels_v100], v100).latency_ms
        )
        k80_ratio = (
            simulate_streams([[k] for k in kernels_k80], k80).latency_ms
            / simulate_streams([kernels_k80], k80).latency_ms
        )
        # Relative benefit of concurrency is smaller (ratio closer to 1) on the K80.
        assert k80_ratio > v100_ratio

    def test_timeline_is_contiguous_and_ordered(self, v100):
        kernels = [conv_kernel(v100, 384, f"k{i}") for i in range(3)]
        result = simulate_streams([[k] for k in kernels], v100, record_trace=True)
        for first, second in zip(result.timeline, result.timeline[1:]):
            assert second.start_ms >= first.start_ms
            assert first.end_ms <= second.end_ms + 1e-9

    def test_deterministic(self, v100):
        kernels = [conv_kernel(v100, 384, f"k{i}") for i in range(3)]
        first = simulate_streams([[k] for k in kernels], v100).latency_ms
        second = simulate_streams([[k] for k in kernels], v100).latency_ms
        assert first == second

    @given(num_streams=st.integers(1, 5), channels=st.sampled_from([64, 128, 384, 768]))
    def test_latency_bounds_property(self, num_streams, channels):
        device = get_device("v100")
        kernels = [conv_kernel(device, channels, f"k{i}") for i in range(num_streams)]
        concurrent = simulate_streams([[k] for k in kernels], device).latency_ms
        sequential = simulate_streams([kernels], device).latency_ms
        slowest = max(k.duration_alone_ms(device) for k in kernels)
        assert concurrent <= sequential + 1e-9
        assert concurrent >= slowest - 1e-9


class TestStagePlacement:
    def test_from_groups_and_totals(self, v100):
        a, b = conv_kernel(v100, 384, "a"), conv_kernel(v100, 768, "b")
        placement = StagePlacement.from_groups([[a], [b]])
        assert placement.num_streams == 2
        assert placement.total_kernels() == 2
        assert placement.total_flops() == a.flops + b.flops

    def test_sync_overhead_added_per_extra_stream(self, v100):
        a, b = conv_kernel(v100, 384, "a"), conv_kernel(v100, 384, "b")
        one_stream = run_stage_placement(StagePlacement.from_groups([[a, b]]), v100).latency_ms
        no_sync = run_stage_placement(
            StagePlacement.from_groups([[a, b]]), v100, include_sync=False
        ).latency_ms
        assert one_stream == pytest.approx(no_sync + v100.stream_sync_overhead_ms)
        two_streams = run_stage_placement(StagePlacement.from_groups([[a], [b]]), v100)
        assert two_streams.latency_ms < one_stream
