"""Round-trip persistence tests for schedules produced by real IOS searches.

The serving registry (``repro.serve.registry``) rests entirely on
``Schedule.save/load`` faithfully reproducing scheduler output, including
merge stages whose operators only exist after re-lowering — so these tests
exercise the full save → load → validate → lower → execute path, plus the
error behaviour on corrupted files.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    IOSScheduler,
    ParallelizationStrategy,
    Schedule,
    SchedulerConfig,
    SimulatedCostModel,
    Stage,
    schedule_latency_ms,
)
from repro.models import build_model


def optimize(graph, device, variant="ios-both"):
    scheduler = IOSScheduler(SimulatedCostModel(device), SchedulerConfig.variant(variant))
    return scheduler.optimize_graph(graph).schedule


class TestScheduleRoundTrip:
    def test_dict_round_trip_preserves_everything(self, v100, fig2):
        schedule = optimize(fig2, v100)
        restored = Schedule.from_dict(schedule.to_dict())
        assert restored.graph_name == schedule.graph_name
        assert restored.origin == schedule.origin
        assert restored.stages == schedule.stages

    def test_file_round_trip_on_scheduler_output(self, tmp_path, v100, fig2):
        schedule = optimize(fig2, v100)
        path = schedule.save(tmp_path / "nested" / "fig2.json")
        assert path.exists()
        restored = Schedule.load(path)
        assert restored == schedule

    def test_merge_stages_survive_round_trip(self, tmp_path, v100, fig2):
        # ios-merge only uses the merge strategy, so merge stages are
        # guaranteed to appear in the persisted schedule.
        schedule = optimize(fig2, v100, variant="ios-merge")
        merge_stages = [
            stage for stage in schedule.stages
            if stage.strategy is ParallelizationStrategy.MERGE
        ]
        assert merge_stages, "ios-merge should produce at least one merge stage"
        restored = Schedule.load(schedule.save(tmp_path / "merge.json"))
        assert restored.stages == schedule.stages
        assert any(
            stage.strategy is ParallelizationStrategy.MERGE for stage in restored.stages
        )

    def test_restored_schedule_executes_identically(self, tmp_path, v100):
        graph = build_model("squeezenet", batch_size=2)
        schedule = optimize(graph, v100)
        restored = Schedule.load(schedule.save(tmp_path / "sq.json"))
        restored.validate(graph)
        assert schedule_latency_ms(graph, restored, v100) == pytest.approx(
            schedule_latency_ms(graph, schedule, v100)
        )

    def test_stage_dict_round_trip(self, v100, fig2):
        schedule = optimize(fig2, v100)
        for stage in schedule.stages:
            data = stage.to_dict()
            # The dict form must be JSON-clean (what the registry writes).
            json.dumps(data)
            restored = Stage.from_dict(data)
            assert restored == stage
            assert restored.strategy is stage.strategy


class TestCorruptedFiles:
    def test_truncated_json_raises(self, tmp_path, v100, fig2):
        schedule = optimize(fig2, v100)
        path = schedule.save(tmp_path / "schedule.json")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(json.JSONDecodeError):
            Schedule.load(path)

    def test_wrong_document_shape_raises(self, tmp_path):
        path = tmp_path / "schedule.json"
        path.write_text(json.dumps({"graph_name": "x", "stages": [{"operators": []}]}))
        with pytest.raises((KeyError, ValueError)):
            Schedule.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Schedule.load(tmp_path / "does_not_exist.json")
