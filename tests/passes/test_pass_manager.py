"""Tests for the Pass protocol, registry and PassManager pipeline driver."""

from __future__ import annotations

import pytest

from repro.ir import GraphBuilder, TensorShape
from repro.models import build_model
from repro.passes import (
    DEFAULT_PASSES,
    GraphPass,
    PASS_REGISTRY,
    PassError,
    PassManager,
    default_pipeline,
    make_pass,
    optimize_graph,
    register_pass,
    unfuse_activations,
)
from repro.passes.rewriter import GraphRewriter


def relu_chain_graph():
    """conv (unfused) -> relu -> relu: two fusion opportunities."""
    b = GraphBuilder("relu_chain", TensorShape(1, 3, 8, 8))
    x = b.conv2d("conv", b.input_name, out_channels=4, kernel=3, activation=None)
    x = b.relu("act1", x)
    b.relu("act2", x)
    return b.build()


class CountingPass(GraphPass):
    """Test double: reports one rewrite for the first ``budget`` invocations."""

    name = "counting"

    def __init__(self, budget: int = 0):
        self.budget = budget
        self.calls = 0

    def run(self, graph):
        self.calls += 1
        if self.budget > 0:
            self.budget -= 1
            return GraphRewriter(graph).rebuild(), 1
        return graph, 0


class TestPassRegistry:
    def test_builtin_passes_are_registered(self):
        for name in DEFAULT_PASSES:
            assert name in PASS_REGISTRY
            assert make_pass(name).name == name

    def test_unknown_pass_name(self):
        with pytest.raises(KeyError, match="registered passes"):
            make_pass("no-such-pass")

    def test_custom_pass_registration_and_use_by_name(self):
        @register_pass
        class NopPass(GraphPass):
            name = "test-nop"

            def run(self, graph):
                return graph, 0

        try:
            manager = PassManager(["test-nop"])
            result = manager.run(relu_chain_graph())
            assert result.total_rewrites == 0
            assert result.iterations == 1
        finally:
            del PASS_REGISTRY["test-nop"]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate pass name"):
            @register_pass
            class Clash(GraphPass):
                name = DEFAULT_PASSES[0]

                def run(self, graph):
                    return graph, 0

    def test_unnamed_pass_rejected(self):
        with pytest.raises(ValueError, match="must define a unique 'name'"):
            @register_pass
            class Unnamed(GraphPass):
                def run(self, graph):
                    return graph, 0


class TestPassManager:
    def test_needs_at_least_one_pass(self):
        with pytest.raises(ValueError):
            PassManager([])

    def test_single_iteration_without_fixed_point(self):
        pass_ = CountingPass(budget=5)
        manager = PassManager([pass_], fixed_point=False)
        result = manager.run(relu_chain_graph())
        assert pass_.calls == 1
        assert result.iterations == 1
        assert result.total_rewrites == 1

    def test_fixed_point_iterates_until_quiescence(self):
        pass_ = CountingPass(budget=3)
        manager = PassManager([pass_])
        result = manager.run(relu_chain_graph())
        # 3 rewriting iterations + 1 quiescent iteration.
        assert pass_.calls == 4
        assert result.iterations == 4
        assert result.total_rewrites == 3

    def test_non_convergence_raises(self):
        pass_ = CountingPass(budget=10_000)
        with pytest.raises(PassError, match="did not converge"):
            PassManager([pass_], max_iterations=3).run(relu_chain_graph())

    def test_stats_per_pass(self):
        graph = relu_chain_graph()
        result = default_pipeline().run(graph)
        by_name = result.stats_by_name()
        assert set(by_name) == set(DEFAULT_PASSES)
        assert by_name["fuse-activation"].rewrites == 2  # relu∘relu fold + fuse
        for stat in result.stats:
            assert stat.runs == result.iterations
            assert stat.elapsed_s >= 0
        assert "fuse-activation" in result.describe()

    def test_invalid_rewrite_is_caught(self):
        class BreakingPass(GraphPass):
            name = "breaking"

            def run(self, graph):
                rw = GraphRewriter(graph)
                # Detach an operator from its block: validation must fail.
                victim = next(n for n in rw.block_of if rw.kind(n) != "placeholder")
                del rw.block_of[victim]
                return rw.rebuild(), 1

        with pytest.raises(PassError, match="produced an invalid graph"):
            PassManager([BreakingPass()]).run(relu_chain_graph())

    def test_input_graph_is_never_mutated(self):
        graph = relu_chain_graph()
        before = list(graph.nodes)
        result = default_pipeline().run(graph)
        assert list(graph.nodes) == before
        assert result.graph is not graph
        assert "act1" in graph.nodes  # original still has its standalone ReLUs


class TestOptimizeGraphCache:
    def test_cache_returns_same_result_object(self):
        graph = build_model("squeezenet", optimize=False)
        first = optimize_graph(graph)
        second = optimize_graph(graph)
        assert second is first

    def test_cache_can_be_bypassed(self):
        graph = build_model("squeezenet", optimize=False)
        first = optimize_graph(graph)
        fresh = optimize_graph(graph, cache=False)
        assert fresh is not first

    def test_structurally_equal_graphs_share_a_result(self):
        a = unfuse_activations(build_model("squeezenet", optimize=False))
        b = unfuse_activations(build_model("squeezenet", optimize=False))
        assert optimize_graph(a) is optimize_graph(b)

    def test_differently_configured_passes_do_not_share_results(self):
        from repro.ir import GraphBuilder, TensorShape
        from repro.passes import CommonSubexpressionPass

        def duplicate_convs():
            b = GraphBuilder("dups", TensorShape(1, 3, 8, 8))
            with b.block("blk"):
                left = b.conv2d("conv_a", b.input_name, out_channels=4, kernel=3)
                r = b.conv2d("conv_b", b.input_name, out_channels=4, kernel=3)
                b.concat("cat", [left, r])
            return b.build()

        conservative = optimize_graph(duplicate_convs(), [CommonSubexpressionPass()])
        aggressive = optimize_graph(
            duplicate_convs(), [CommonSubexpressionPass(include_weighted=True)]
        )
        # Same input fingerprint, different pass *configuration*: the cache
        # must keep them apart (include_weighted merges the twin convs).
        assert conservative.total_rewrites == 0
        assert aggressive.total_rewrites == 1
        assert "conv_b" not in aggressive.graph.nodes
