"""Integration of the pass pipeline with the scheduler path (repro.core)."""

from __future__ import annotations

import pytest

from repro.core import (
    IOSScheduler,
    SimulatedCostModel,
    measure_schedule,
    schedule_graph,
)
from repro.models import build_model
from repro.passes import PassManager, unfuse_activations


@pytest.fixture(scope="module")
def raw_squeezenet():
    return unfuse_activations(build_model("squeezenet", optimize=False))


class TestSchedulerPassesEntryPoint:
    def test_default_path_does_not_rewrite(self, raw_squeezenet, v100):
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(raw_squeezenet)
        assert result.graph is raw_squeezenet
        assert result.pass_stats is None

    def test_passes_true_runs_default_pipeline(self, raw_squeezenet, v100):
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(
            raw_squeezenet, passes=True
        )
        assert result.graph is not raw_squeezenet
        assert len(result.graph.schedulable_names()) < len(
            raw_squeezenet.schedulable_names()
        )
        assert result.pass_stats is not None
        assert sum(s.rewrites for s in result.pass_stats) > 0
        # The schedule refers to (and validates against) the rewritten graph.
        result.schedule.validate(result.graph)
        assert measure_schedule(result.graph, result.schedule, v100).latency_ms > 0

    def test_custom_pipeline_instance(self, raw_squeezenet, v100):
        manager = PassManager(["fuse-activation"])
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(
            raw_squeezenet, passes=manager
        )
        assert [s.name for s in result.pass_stats] == ["fuse-activation"]

    def test_schedule_graph_convenience(self, raw_squeezenet, v100):
        optimized = schedule_graph(raw_squeezenet, "v100", passes=True)
        plain = schedule_graph(raw_squeezenet, v100)
        assert plain.graph is raw_squeezenet
        assert len(optimized.graph.schedulable_names()) < len(
            plain.graph.schedulable_names()
        )
        # Fewer kernels => the optimised schedule cannot be slower.
        opt_ms = measure_schedule(optimized.graph, optimized.schedule, v100).latency_ms
        raw_ms = measure_schedule(plain.graph, plain.schedule, v100).latency_ms
        assert opt_ms <= raw_ms + 1e-9

    def test_schedule_graph_rejects_config_and_pruning(self, raw_squeezenet):
        from repro.core import PruningStrategy, SchedulerConfig

        with pytest.raises(ValueError, match="not both"):
            schedule_graph(
                raw_squeezenet,
                "v100",
                config=SchedulerConfig(),
                pruning=PruningStrategy(2, 4),
            )


class TestBuildModelOptimize:
    def test_optimize_kwarg(self):
        raw = build_model("nasnet_a", optimize=False)
        optimized = build_model("nasnet_a", optimize=True)
        assert len(optimized.schedulable_names()) < len(raw.schedulable_names())

    def test_process_default(self):
        from repro.models import set_default_optimize

        previous = set_default_optimize(True)
        try:
            implicit = build_model("nasnet_a")
        finally:
            set_default_optimize(previous)
        explicit = build_model("nasnet_a", optimize=True)
        assert list(implicit.nodes) == list(explicit.nodes)

    def test_cli_flag_restores_default(self, capsys):
        from repro.experiments.cli import main
        from repro.models.common import _DEFAULT_OPTIMIZE

        assert main(["figure13", "--passes"]) == 0
        capsys.readouterr()
        from repro.models import common

        assert common._DEFAULT_OPTIMIZE == _DEFAULT_OPTIMIZE
