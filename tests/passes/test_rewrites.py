"""Unit tests for the built-in rewrite passes and unfuse_activations."""

from __future__ import annotations

import pytest

from repro.ir import Conv2d, GraphBuilder, SeparableConv2d, TensorShape, graph_fingerprint
from repro.models import build_model
from repro.passes import (
    CanonicalizePass,
    CommonSubexpressionPass,
    EliminateDeadPass,
    FuseActivationPass,
    SplitConcatSimplifyPass,
    default_pipeline,
    unfuse_activations,
)

SHAPE = TensorShape(1, 8, 8, 8)


class TestFuseActivation:
    def test_folds_relu_into_preceding_conv(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=3, activation=None)
        b.relu("act", x)
        graph, rewrites = FuseActivationPass().run(b.build())
        assert rewrites == 1
        assert "act" not in graph.nodes
        conv = graph.nodes["conv"]
        assert isinstance(conv, Conv2d) and conv.activation == "relu"
        assert graph.output_names() == ["conv"]

    def test_does_not_fold_when_raw_conv_output_is_observed(self):
        # conv feeds both the relu and a pool: folding would rectify the
        # pool's input, changing its value.
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=3, activation=None)
        b.relu("act", x)
        b.max_pool("pool", x, kernel=2)
        graph, rewrites = FuseActivationPass().run(b.build())
        assert rewrites == 0
        assert graph.nodes["conv"].activation is None
        assert "act" in graph.nodes

    def test_drops_redundant_relu_after_fused_conv(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=3)  # fused relu
        b.relu("act", x)
        graph, rewrites = FuseActivationPass().run(b.build())
        assert rewrites == 1
        assert "act" not in graph.nodes

    def test_folds_relu_into_following_sepconv(self):
        b = GraphBuilder("g", SHAPE)
        x = b.relu("pre", b.input_name)
        b.sep_conv2d("sep", x, out_channels=8, kernel=3, pre_activation=False)
        graph, rewrites = FuseActivationPass().run(b.build())
        assert rewrites == 1
        assert "pre" not in graph.nodes
        sep = graph.nodes["sep"]
        assert isinstance(sep, SeparableConv2d) and sep.pre_activation
        assert sep.inputs == ("input",)

    def test_keeps_shared_relu_feeding_sepconv(self):
        # The relu's value is also consumed elsewhere: it must survive.
        b = GraphBuilder("g", SHAPE)
        x = b.relu("pre", b.input_name)
        b.sep_conv2d("sep", x, out_channels=8, kernel=3, pre_activation=False)
        b.max_pool("pool", x, kernel=2)
        graph, rewrites = FuseActivationPass().run(b.build())
        assert rewrites == 0
        assert "pre" in graph.nodes

    def test_strips_redundant_pre_activation(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=1)  # rectified
        b.sep_conv2d("sep", x, out_channels=8, kernel=3, pre_activation=True)
        graph, rewrites = FuseActivationPass().run(b.build())
        assert rewrites == 1
        assert not graph.nodes["sep"].pre_activation

    def test_folds_relu_into_linear(self):
        b = GraphBuilder("g", SHAPE)
        x = b.flatten("flat", b.input_name)
        x = b.linear("fc", x, out_features=16, activation=None)
        b.relu("act", x)
        graph, rewrites = FuseActivationPass().run(b.build())
        assert rewrites == 1
        assert graph.nodes["fc"].activation == "relu"

    def test_preserves_flops(self):
        graph = unfuse_activations(build_model("squeezenet", optimize=False))
        fused, rewrites = FuseActivationPass().run(graph)
        assert rewrites > 0
        assert fused.total_flops() <= graph.total_flops()


class TestCommonSubexpression:
    def duplicate_pools(self):
        b = GraphBuilder("g", SHAPE)
        x = b.input_name
        with b.block("blk"):
            a = b.avg_pool("pool_a", x, kernel=3, stride=1, padding=1)
            c = b.avg_pool("pool_b", x, kernel=3, stride=1, padding=1)
            b.add("sum", [a, c])
        return b.build()

    def test_merges_duplicate_stateless_ops(self):
        graph, rewrites = CommonSubexpressionPass().run(self.duplicate_pools())
        assert rewrites == 1
        assert "pool_b" not in graph.nodes
        assert graph.nodes["sum"].inputs == ("pool_a", "pool_a")
        # add(x, x) still sums two operands of identical shape.
        assert graph.nodes["sum"].output_shape == graph.nodes["pool_a"].output_shape

    def test_does_not_merge_weighted_operators(self):
        b = GraphBuilder("g", SHAPE)
        x = b.input_name
        with b.block("blk"):
            left = b.conv2d("conv_a", x, out_channels=4, kernel=3)
            r = b.conv2d("conv_b", x, out_channels=4, kernel=3)
            b.concat("cat", [left, r])
        graph, rewrites = CommonSubexpressionPass().run(b.build())
        # Same config, but the two convolutions own different learned weights.
        assert rewrites == 0
        assert "conv_a" in graph.nodes and "conv_b" in graph.nodes

    def test_include_weighted_opt_in(self):
        b = GraphBuilder("g", SHAPE)
        x = b.input_name
        with b.block("blk"):
            left = b.conv2d("conv_a", x, out_channels=4, kernel=3)
            r = b.conv2d("conv_b", x, out_channels=4, kernel=3)
            b.concat("cat", [left, r])
        graph, rewrites = CommonSubexpressionPass(include_weighted=True).run(b.build())
        assert rewrites == 1
        assert graph.nodes["cat"].inputs == ("conv_a", "conv_a")

    def test_does_not_merge_across_blocks(self):
        b = GraphBuilder("g", SHAPE)
        x = b.input_name
        with b.block("one"):
            a = b.avg_pool("pool_a", x, kernel=3, stride=1, padding=1)
        with b.block("two"):
            c = b.avg_pool("pool_b", x, kernel=3, stride=1, padding=1)
            b.add("sum", [a, c])
        graph, rewrites = CommonSubexpressionPass().run(b.build())
        assert rewrites == 0

    def test_add_input_order_is_commutative(self):
        b = GraphBuilder("g", SHAPE)
        x = b.input_name
        with b.block("blk"):
            p = b.avg_pool("pool", x, kernel=3, stride=1, padding=1)
            q = b.max_pool("mpool", x, kernel=3, stride=1, padding=1)
            s1 = b.add("sum1", [p, q])
            s2 = b.add("sum2", [q, p])
            b.concat("cat", [s1, s2])
        graph, rewrites = CommonSubexpressionPass().run(b.build())
        assert rewrites == 1
        assert graph.nodes["cat"].inputs == ("sum1", "sum1")

    def test_merges_nasnet_duplicate_pools(self):
        graph = build_model("nasnet_a", optimize=False)
        optimized, rewrites = CommonSubexpressionPass().run(graph)
        assert rewrites > 0
        assert len(optimized.schedulable_names()) < len(graph.schedulable_names())


class TestSplitConcatSimplify:
    def test_concat_of_complete_split_cancels(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=6, kernel=1)
        s0 = b.split("s0", x, sections=[2, 4], index=0)
        s1 = b.split("s1", x, sections=[2, 4], index=1)
        cat = b.concat("cat", [s0, s1])
        b.max_pool("pool", cat, kernel=2)
        graph, rewrites = SplitConcatSimplifyPass().run(b.build())
        # 1 concat cancelled + 2 orphaned splits dropped in the same pass
        # (after rebuilding, a consumerless split would look like an output).
        assert rewrites == 3
        assert graph.nodes["pool"].inputs == ("conv",)
        assert "s0" not in graph.nodes and "s1" not in graph.nodes

    def test_out_of_order_split_does_not_cancel(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=6, kernel=1)
        s0 = b.split("s0", x, sections=[3, 3], index=0)
        s1 = b.split("s1", x, sections=[3, 3], index=1)
        b.concat("cat", [s1, s0])  # swapped: channel layout differs
        graph, rewrites = SplitConcatSimplifyPass().run(b.build())
        assert rewrites == 0

    def test_split_of_concat_selects_branch(self):
        b = GraphBuilder("g", SHAPE)
        left = b.conv2d("left", b.input_name, out_channels=2, kernel=1)
        r = b.conv2d("right", b.input_name, out_channels=4, kernel=1)
        cat = b.concat("cat", [left, r])
        s = b.split("take_right", cat, sections=[2, 4], index=1)
        b.max_pool("pool", s, kernel=2)
        graph, rewrites = SplitConcatSimplifyPass().run(b.build())
        # split bypassed + orphaned concat dropped + orphaned 'left' branch
        # (the concat was its only consumer) cascaded away.
        assert rewrites == 3
        assert graph.nodes["pool"].inputs == ("right",)
        assert "cat" not in graph.nodes and "left" not in graph.nodes

    def test_single_input_concat_is_removed(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=1)
        cat = b.concat("cat", [x])
        b.max_pool("pool", cat, kernel=2)
        graph, rewrites = SplitConcatSimplifyPass().run(b.build())
        assert rewrites == 1
        assert graph.nodes["pool"].inputs == ("conv",)


class TestEliminateDead:
    def test_identity_is_bypassed(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=1)
        i = b.identity("skip", x)
        b.max_pool("pool", i, kernel=2)
        graph, rewrites = EliminateDeadPass().run(b.build())
        assert rewrites == 1
        assert "skip" not in graph.nodes
        assert graph.nodes["pool"].inputs == ("conv",)

    def test_unconsumed_nodes_are_outputs_not_dead(self):
        # With no consumers, a node *is* a graph output by definition: the
        # pass must not second-guess that.
        b = GraphBuilder("g", SHAPE)
        b.conv2d("live", b.input_name, out_channels=4, kernel=1)
        d1 = b.conv2d("tail1", b.input_name, out_channels=4, kernel=1)
        b.conv2d("tail2", d1, out_channels=4, kernel=1)
        graph, rewrites = EliminateDeadPass().run(b.build())
        assert rewrites == 0
        assert set(graph.nodes) == {"input", "live", "tail1", "tail2"}

    def test_output_identity_transfers_outputness(self):
        b = GraphBuilder("g", SHAPE)
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=1)
        b.identity("alias", x)
        graph, rewrites = EliminateDeadPass().run(b.build())
        assert rewrites == 1
        assert "alias" not in graph.nodes
        assert graph.output_names() == ["conv"]

    def test_outputs_are_never_removed(self):
        b = GraphBuilder("g", SHAPE)
        b.conv2d("only", b.input_name, out_channels=4, kernel=1)
        graph, rewrites = EliminateDeadPass().run(b.build())
        assert rewrites == 0
        assert "only" in graph.nodes


class TestCanonicalize:
    def test_idempotent(self):
        graph = build_model("nasnet_a", optimize=False)
        once, rewrites_first = CanonicalizePass().run(graph)
        assert rewrites_first > 0
        again, rewrites_second = CanonicalizePass().run(once)
        assert rewrites_second == 0
        assert again is once

    def test_normalises_insertion_order_for_fingerprints(self):
        def build(right_first: bool):
            b = GraphBuilder("g", SHAPE)
            if right_first:
                r = b.conv2d("r", b.input_name, out_channels=4, kernel=1)
                left = b.conv2d("l", b.input_name, out_channels=4, kernel=3)
            else:
                left = b.conv2d("l", b.input_name, out_channels=4, kernel=3)
                r = b.conv2d("r", b.input_name, out_channels=4, kernel=1)
            b.concat("cat", [left, r])
            return b.build()

        a, _ = CanonicalizePass().run(build(True))
        c, _ = CanonicalizePass().run(build(False))
        assert list(a.nodes) == list(c.nodes)
        assert graph_fingerprint(a) == graph_fingerprint(c)

    def test_sorts_commutative_add_inputs(self):
        def build(swapped: bool):
            b = GraphBuilder("g", SHAPE)
            p = b.avg_pool("apool", b.input_name, kernel=3, stride=1, padding=1)
            m = b.max_pool("mpool", b.input_name, kernel=3, stride=1, padding=1)
            b.add("sum", [m, p] if swapped else [p, m])
            return b.build()

        a, _ = CanonicalizePass().run(build(True))
        c, _ = CanonicalizePass().run(build(False))
        assert a.nodes["sum"].inputs == c.nodes["sum"].inputs
        assert graph_fingerprint(a) == graph_fingerprint(c)


class TestUnfuseRoundTrip:
    @pytest.mark.parametrize("model", ["squeezenet", "resnet_18", "randwire"])
    def test_unfuse_preserves_flops_and_fingerprint_round_trips(self, model):
        fused = build_model(model, optimize=False)
        raw = unfuse_activations(fused)
        assert raw.total_flops() == fused.total_flops()
        assert len(raw.schedulable_names()) > len(fused.schedulable_names())

        pipeline = default_pipeline()
        from_raw = pipeline.run(raw).graph
        from_fused = pipeline.run(fused).graph
        # Confluence: both routes end at the same optimised graph.
        assert graph_fingerprint(from_raw) == graph_fingerprint(from_fused)
        assert len(from_raw.schedulable_names()) <= len(fused.schedulable_names())

    def test_unfused_graph_validates_and_computes_same_outputs_shape(self):
        fused = build_model("squeezenet", optimize=False)
        raw = unfuse_activations(fused)
        assert raw.output_names() != []
        fused_out = fused.nodes[fused.output_names()[0]].output_shape
        raw_out = raw.nodes[raw.output_names()[0]].output_shape
        assert fused_out == raw_out
