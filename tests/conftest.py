"""Shared fixtures for the test suite.

Most tests operate on the small example graphs from the paper's figures
(diamond, Figure-2 block, Figure-5 graph) and the V100 device preset; the full
benchmark networks are only touched by a handful of model-zoo and integration
tests to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core import FlopsCostModel, SimulatedCostModel
from repro.hardware import CUDNN_PROFILE, get_device
from repro.models import (
    chain_graph,
    diamond_graph,
    figure2_block,
    figure3_graph,
    figure5_graph,
    parallel_chains_graph,
)


@pytest.fixture(scope="session")
def v100():
    return get_device("v100")


@pytest.fixture(scope="session")
def k80():
    return get_device("k80")


@pytest.fixture(scope="session")
def rtx2080ti():
    return get_device("rtx2080ti")


@pytest.fixture(scope="session")
def cudnn_profile():
    return CUDNN_PROFILE


@pytest.fixture
def diamond():
    return diamond_graph()


@pytest.fixture
def chain4():
    return chain_graph(length=4)


@pytest.fixture
def fig2():
    return figure2_block()


@pytest.fixture
def fig3():
    return figure3_graph()


@pytest.fixture
def fig5():
    return figure5_graph()


@pytest.fixture
def two_chains():
    return parallel_chains_graph(num_chains=2, chain_length=2, join=False)


@pytest.fixture
def sim_cost_model(v100):
    return SimulatedCostModel(v100)


@pytest.fixture
def flops_cost_model():
    return FlopsCostModel(flops_per_ms=1e9, overhead_ms=0.01)
