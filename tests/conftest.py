"""Shared fixtures for the test suite.

Most tests operate on the small example graphs from the paper's figures
(diamond, Figure-2 block, Figure-5 graph) and the V100 device preset; the full
benchmark networks are only touched by a handful of model-zoo and integration
tests to keep the suite fast.
"""

from __future__ import annotations

import random

import pytest

from repro.core import FlopsCostModel, SimulatedCostModel, clear_schedule_memo
from repro.hardware import CUDNN_PROFILE, get_device
from repro.ir.graph import Graph, GraphBuilder
from repro.ir.tensor import TensorShape
from repro.models import (
    chain_graph,
    diamond_graph,
    figure2_block,
    figure3_graph,
    figure5_graph,
    parallel_chains_graph,
)


@pytest.fixture(autouse=True)
def _fresh_schedule_memo():
    """Isolate every test from the process-wide schedule memo."""
    clear_schedule_memo()
    yield
    clear_schedule_memo()


@pytest.fixture(autouse=True)
def _fresh_legacy_warnings():
    """Isolate every test from the process-wide legacy-warning dedup set."""
    from repro.serve.registry import reset_legacy_warnings

    reset_legacy_warnings()
    yield
    reset_legacy_warnings()


@pytest.fixture(scope="session")
def v100():
    return get_device("v100")


@pytest.fixture(scope="session")
def k80():
    return get_device("k80")


@pytest.fixture(scope="session")
def rtx2080ti():
    return get_device("rtx2080ti")


@pytest.fixture(scope="session")
def cudnn_profile():
    return CUDNN_PROFILE


@pytest.fixture
def diamond():
    return diamond_graph()


@pytest.fixture
def chain4():
    return chain_graph(length=4)


@pytest.fixture
def fig2():
    return figure2_block()


@pytest.fixture
def fig3():
    return figure3_graph()


@pytest.fixture
def fig5():
    return figure5_graph()


@pytest.fixture
def two_chains():
    return parallel_chains_graph(num_chains=2, chain_length=2, join=False)


def build_random_graph(
    seed: int,
    num_blocks: int = 2,
    ops_per_block: int = 7,
    size: int = 8,
) -> Graph:
    """Seeded random multi-branch block DAG for property tests.

    Every op preserves the spatial dimensions (stride-1 same-padded convs,
    elementwise ops, channel concats), so any pair of tensors can be joined
    and the generated graph is always valid.  The same seed always yields the
    same graph.
    """
    rng = random.Random(seed)
    channels = rng.choice([4, 8, 16])
    builder = GraphBuilder(f"random-{seed}", TensorShape(1, channels, size, size))
    current = builder.input_name
    for b in range(num_blocks):
        with builder.block(f"block{b}"):
            available = [current]
            for i in range(ops_per_block):
                name = f"b{b}_op{i}"
                kind = rng.choice(["conv", "conv", "relu", "add", "concat"])
                if kind == "conv":
                    x = rng.choice(available)
                    available.append(
                        builder.conv2d(name, x, rng.choice([4, 8, 16]), rng.choice([1, 3]))
                    )
                elif kind == "relu":
                    available.append(builder.relu(name, rng.choice(available)))
                elif kind == "add":
                    by_channels: dict[int, list[str]] = {}
                    for t in available:
                        shape = builder.graph.nodes[t].output_shape
                        by_channels.setdefault(shape.channels, []).append(t)
                    groups = [g for g in by_channels.values() if len(g) >= 2]
                    if groups:
                        available.append(builder.add(name, rng.sample(rng.choice(groups), 2)))
                    else:
                        available.append(builder.relu(name, rng.choice(available)))
                else:  # concat
                    if len(available) >= 2:
                        available.append(builder.concat(name, rng.sample(available, 2)))
                    else:
                        available.append(builder.relu(name, available[0]))
            consumed = {p for t in available for p in builder.graph.nodes[t].inputs}
            leaves = [t for t in available if t not in consumed]
            if len(leaves) > 1:
                current = builder.concat(f"b{b}_out", leaves)
            else:
                current = leaves[0]
    return builder.build()


@pytest.fixture(scope="session")
def random_graph_factory():
    """The seeded random-DAG generator, as a fixture."""
    return build_random_graph


@pytest.fixture
def sim_cost_model(v100):
    return SimulatedCostModel(v100)


@pytest.fixture
def flops_cost_model():
    return FlopsCostModel(flops_per_ms=1e9, overhead_ms=0.01)
