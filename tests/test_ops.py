"""Unit tests for repro.ir.ops (operator taxonomy)."""

from __future__ import annotations

import pytest

from repro.ir.ops import (
    OP_REGISTRY,
    Add,
    Concat,
    Conv2d,
    Flatten,
    Gelu,
    GlobalAvgPool,
    Identity,
    LayerNorm,
    Linear,
    Matmul,
    Opaque,
    Operator,
    Placeholder,
    Pool2d,
    Relu,
    Reshape,
    SeparableConv2d,
    Softmax,
    Split,
    Transpose,
    operator_from_config,
    register_operator,
)
from repro.ir.tensor import TensorShape

X = TensorShape(1, 64, 28, 28)


def bound(op: Operator, *input_shapes: TensorShape) -> Operator:
    op.bind(list(input_shapes) if input_shapes else [X])
    return op


class TestConv2d:
    def test_output_shape_same_padding(self):
        conv = bound(Conv2d("c", ["x"], out_channels=128, kernel=3))
        assert conv.output_shape == TensorShape(1, 128, 28, 28)

    def test_output_shape_stride2(self):
        conv = bound(Conv2d("c", ["x"], out_channels=128, kernel=3, stride=2))
        assert conv.output_shape == TensorShape(1, 128, 14, 14)

    def test_asymmetric_kernel(self):
        conv = bound(Conv2d("c", ["x"], out_channels=64, kernel=(1, 7)))
        assert conv.output_shape == TensorShape(1, 64, 28, 28)

    def test_flops_formula(self):
        conv = bound(Conv2d("c", ["x"], out_channels=128, kernel=3, activation=None))
        expected = 2 * 1 * 128 * 28 * 28 * 64 * 9
        assert conv.flops() == expected

    def test_fused_relu_adds_flops(self):
        plain = bound(Conv2d("c", ["x"], out_channels=128, kernel=3, activation=None))
        fused = bound(Conv2d("c", ["x"], out_channels=128, kernel=3, activation="relu"))
        assert fused.flops() == plain.flops() + fused.output_shape.numel()

    def test_weight_count_includes_bias(self):
        conv = bound(Conv2d("c", ["x"], out_channels=32, kernel=1))
        assert conv.weight_count() == 32 * 64 * 1 * 1 + 32

    def test_grouped_conv_flops_scale_down(self):
        full = bound(Conv2d("c", ["x"], out_channels=64, kernel=3, activation=None))
        grouped = bound(Conv2d("c", ["x"], out_channels=64, kernel=3, groups=4, activation=None))
        assert grouped.flops() == full.flops() // 4

    def test_merge_key_same_for_different_kernels(self):
        a = Conv2d("a", ["x"], 128, kernel=3)
        b = Conv2d("b", ["x"], 256, kernel=5)
        assert a.merge_key() == b.merge_key()

    def test_merge_key_differs_on_stride(self):
        a = Conv2d("a", ["x"], 128, kernel=3, stride=1)
        b = Conv2d("b", ["x"], 128, kernel=3, stride=2)
        assert a.merge_key() != b.merge_key()

    def test_merge_key_none_for_grouped(self):
        assert Conv2d("a", ["x"], 128, kernel=3, groups=2).merge_key() is None

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            Conv2d("c", ["x"], out_channels=0, kernel=3)

    def test_rejects_channels_not_divisible_by_groups(self):
        with pytest.raises(ValueError):
            Conv2d("c", ["x"], out_channels=10, kernel=3, groups=3)

    def test_rejects_2d_input(self):
        conv = Conv2d("c", ["x"], out_channels=8, kernel=3)
        with pytest.raises(ValueError):
            conv.bind([TensorShape(1, 64)])

    def test_rejects_unknown_padding_string(self):
        with pytest.raises(ValueError):
            Conv2d("c", ["x"], out_channels=8, kernel=3, padding="valid-ish")

    def test_memory_bytes_positive_and_consistent(self):
        conv = bound(Conv2d("c", ["x"], out_channels=16, kernel=3))
        assert conv.memory_bytes() == conv.input_bytes() + conv.weight_bytes() + conv.output_bytes()

    def test_unbound_flops_raises(self):
        with pytest.raises(RuntimeError):
            Conv2d("c", ["x"], out_channels=8, kernel=3).flops()


class TestSeparableConv2d:
    def test_output_shape(self):
        sep = bound(SeparableConv2d("s", ["x"], out_channels=128, kernel=3))
        assert sep.output_shape == TensorShape(1, 128, 28, 28)

    def test_flops_below_dense_conv(self):
        sep = bound(SeparableConv2d("s", ["x"], out_channels=64, kernel=3, pre_activation=False))
        dense = bound(Conv2d("c", ["x"], out_channels=64, kernel=3, activation=None))
        assert sep.flops() < dense.flops()

    def test_never_mergeable(self):
        assert SeparableConv2d("s", ["x"], out_channels=64, kernel=3).merge_key() is None

    def test_pre_activation_adds_flops(self):
        with_act = bound(SeparableConv2d("s", ["x"], 64, 3, pre_activation=True))
        without = bound(SeparableConv2d("s", ["x"], 64, 3, pre_activation=False))
        assert with_act.flops() == without.flops() + X.numel()


class TestPooling:
    def test_max_pool_shape(self):
        pool = bound(Pool2d("p", ["x"], "max", kernel=3, stride=2, padding=0))
        assert pool.output_shape == TensorShape(1, 64, 13, 13)

    def test_avg_pool_same_padding(self):
        pool = bound(Pool2d("p", ["x"], "avg", kernel=3, stride=1, padding=1))
        assert pool.output_shape == X

    def test_invalid_pool_type(self):
        with pytest.raises(ValueError):
            Pool2d("p", ["x"], "median", kernel=3)

    def test_global_avg_pool(self):
        gap = bound(GlobalAvgPool("g", ["x"]))
        assert gap.output_shape == TensorShape(1, 64, 1, 1)

    def test_pool_has_zero_weights(self):
        pool = bound(Pool2d("p", ["x"], "max", kernel=2))
        assert pool.weight_count() == 0


class TestElementwiseAndStructural:
    def test_relu_preserves_shape(self):
        assert bound(Relu("r", ["x"])).output_shape == X

    def test_identity_launches_no_kernel(self):
        op = bound(Identity("i", ["x"]))
        assert not op.launches_kernel
        assert op.output_shape == X

    def test_add_shape_and_flops(self):
        add = Add("a", ["x", "y"])
        add.bind([X, X])
        assert add.output_shape == X
        assert add.flops() == X.numel()

    def test_add_rejects_mismatched_shapes(self):
        add = Add("a", ["x", "y"])
        with pytest.raises(ValueError):
            add.bind([X, TensorShape(1, 32, 28, 28)])

    def test_add_requires_two_inputs(self):
        with pytest.raises(ValueError):
            Add("a", ["x"]).bind([X])

    def test_concat_channels(self):
        concat = Concat("c", ["x", "y"])
        concat.bind([X, TensorShape(1, 32, 28, 28)])
        assert concat.output_shape == TensorShape(1, 96, 28, 28)

    def test_split_section_shape(self):
        split = Split("s", ["x"], sections=[24, 40], index=1)
        split.bind([X])
        assert split.output_shape == TensorShape(1, 40, 28, 28)
        assert not split.launches_kernel

    def test_split_rejects_wrong_sections(self):
        split = Split("s", ["x"], sections=[10, 10], index=0)
        with pytest.raises(ValueError):
            split.bind([X])

    def test_split_rejects_bad_index(self):
        with pytest.raises(ValueError):
            Split("s", ["x"], sections=[32, 32], index=2)

    def test_flatten(self):
        assert bound(Flatten("f", ["x"])).output_shape == TensorShape(1, 64 * 28 * 28)

    def test_softmax_preserves_shape(self):
        sm = Softmax("s", ["x"])
        sm.bind([TensorShape(1, 1000)])
        assert sm.output_shape == TensorShape(1, 1000)


class TestLinear:
    def test_linear_flattens_input(self):
        fc = bound(Linear("fc", ["x"], out_features=1000))
        assert fc.output_shape == TensorShape(1, 1000)
        assert fc.in_features == 64 * 28 * 28

    def test_linear_flops(self):
        fc = Linear("fc", ["x"], out_features=10)
        fc.bind([TensorShape(2, 100)])
        assert fc.flops() == 2 * 2 * 100 * 10

    def test_matmul_is_first_class(self):
        # Matmul used to subclass Linear, which priced phantom weights into
        # the batched (two-operand) form; it is now a first-class operator.
        assert not issubclass(Matmul, Linear)
        assert Matmul.kind == "matmul"

    def test_matmul_projection_form_matches_linear(self):
        mm = Matmul("m", ["x"], out_features=10)
        fc = Linear("l", ["x"], out_features=10)
        for op in (mm, fc):
            op.bind([TensorShape(2, 100)])
        assert mm.output_shape == fc.output_shape
        assert mm.flops() == fc.flops()
        assert mm.weight_count() == fc.weight_count()

    def test_matmul_batched_form_is_weightless(self):
        mm = Matmul("m", ["a", "b"])
        mm.bind([TensorShape(64, 32), TensorShape(32, 48)])
        assert mm.output_shape == TensorShape(64, 48)
        assert mm.flops() == 2 * 64 * 32 * 48
        assert mm.weight_count() == 0

    def test_matmul_batched_form_rejects_mismatched_inner_dim(self):
        mm = Matmul("m", ["a", "b"])
        with pytest.raises(ValueError):
            mm.bind([TensorShape(64, 32), TensorShape(31, 48)])

    def test_linear_merge_key(self):
        assert Linear("a", ["x"], 10).merge_key() == Linear("b", ["x"], 20).merge_key()


class TestTransformerOps:
    def test_layer_norm_preserves_shape_and_prices_gain_bias(self):
        ln = LayerNorm("ln", ["x"])
        ln.bind([TensorShape(4, 256)])
        assert ln.output_shape == TensorShape(4, 256)
        assert ln.weight_count() == 2 * 256
        assert ln.flops() == 8 * 4 * 256

    def test_gelu_preserves_shape(self):
        ge = Gelu("g", ["x"])
        ge.bind([TensorShape(4, 256)])
        assert ge.output_shape == TensorShape(4, 256)
        assert ge.flops() == 8 * 4 * 256

    def test_transpose_swaps_matrix_axes(self):
        t = Transpose("t", ["x"])
        t.bind([TensorShape(64, 32)])
        assert t.output_shape == TensorShape(32, 64)

    def test_transpose_swaps_spatial_axes(self):
        t = Transpose("t", ["x"])
        t.bind([TensorShape(1, 8, 14, 7)])
        assert t.output_shape == TensorShape(1, 8, 7, 14)

    def test_reshape_preserves_numel_and_batch(self):
        r = Reshape("r", ["x"], [64 * 28 * 28])
        r.bind([X])
        assert r.output_shape == TensorShape(1, 64 * 28 * 28)
        assert not r.launches_kernel
        with pytest.raises(ValueError):
            Reshape("bad", ["x"], [7]).bind([X])

    def test_opaque_rebatches_declared_shape(self):
        o = Opaque("o", ["x"], op_type="Einsum", shape="1x64", digest="abc")
        o.bind([TensorShape(8, 64)])
        assert o.output_shape == TensorShape(8, 64)
        # default cost: one pass over inputs + outputs
        assert o.flops() == 8 * 64 * 2

    def test_opaque_declared_flops_scale_with_batch(self):
        o = Opaque("o", ["x"], op_type="Einsum", shape="1x64", flops=1000)
        o.bind([TensorShape(4, 64)])
        assert o.flops() == 4000

    def test_opaque_digest_distinguishes_attrs(self):
        a = Opaque("o", ["x"], op_type="Einsum", shape="1x64", digest="a")
        b = Opaque("o", ["x"], op_type="Einsum", shape="1x64", digest="b")
        assert a.attrs() != b.attrs()


class TestRegistryAndSerialization:
    def test_all_kinds_registered(self):
        for kind in ("conv2d", "sep_conv2d", "pool2d", "concat", "linear", "placeholder"):
            assert kind in OP_REGISTRY

    def test_roundtrip_conv(self):
        conv = Conv2d("c", ["x"], out_channels=48, kernel=(1, 7), stride=2, activation=None)
        rebuilt = operator_from_config(conv.to_config())
        assert isinstance(rebuilt, Conv2d)
        assert rebuilt.out_channels == 48
        assert rebuilt.kernel == (1, 7)
        assert rebuilt.stride == (2, 2)
        assert rebuilt.activation is None

    def test_roundtrip_placeholder(self):
        ph = Placeholder("input", TensorShape(4, 3, 32, 32))
        rebuilt = operator_from_config(ph.to_config())
        assert rebuilt.output_shape == TensorShape(4, 3, 32, 32)

    def test_roundtrip_every_registered_kind_has_from_attrs(self):
        # Every registered class must expose from_attrs accepting its own attrs.
        samples = {
            "conv2d": Conv2d("c", ["x"], 8, 3),
            "sep_conv2d": SeparableConv2d("s", ["x"], 8, 3),
            "pool2d": Pool2d("p", ["x"], "max", 2),
            "relu": Relu("r", ["x"]),
            "identity": Identity("i", ["x"]),
            "add": Add("a", ["x", "y"]),
            "concat": Concat("k", ["x", "y"]),
            "split": Split("sp", ["x"], [4, 4], 0),
            "flatten": Flatten("f", ["x"]),
            "linear": Linear("l", ["x"], 16),
            "matmul": Matmul("m", ["x"], 16),
            "softmax": Softmax("sm", ["x"]),
            "global_avg_pool": GlobalAvgPool("g", ["x"]),
            "layer_norm": LayerNorm("ln", ["x"]),
            "gelu": Gelu("ge", ["x"]),
            "transpose": Transpose("t", ["x"]),
            "reshape": Reshape("rs", ["x"], [16]),
            "opaque": Opaque("op", ["x"], op_type="Einsum", shape="1x16", digest="d"),
        }
        for kind, op in samples.items():
            rebuilt = operator_from_config(op.to_config())
            assert rebuilt.kind == kind
            assert rebuilt.inputs == op.inputs

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            operator_from_config({"kind": "made_up", "name": "x", "inputs": []})

    def test_duplicate_registration_rejected(self):
        class FakeConv(Operator):
            kind = "conv2d"

        with pytest.raises(ValueError):
            register_operator(FakeConv)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Relu("", ["x"])
