"""Unit tests for repro.core.schedule and repro.core.baselines."""

from __future__ import annotations

import pytest

from repro.core import (
    ParallelizationStrategy,
    Schedule,
    ScheduleValidationError,
    Stage,
    connected_groups,
    greedy_schedule,
    sequential_schedule,
)
from repro.models import build_model, figure2_block


class TestStage:
    def test_basic_properties(self):
        stage = Stage(("a", "b"), ParallelizationStrategy.CONCURRENT)
        assert len(stage) == 2
        assert "a" in stage and "c" not in stage

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            Stage(())
        with pytest.raises(ValueError):
            Stage(("a", "a"))

    def test_dict_roundtrip(self):
        stage = Stage(("x", "y"), ParallelizationStrategy.MERGE)
        rebuilt = Stage.from_dict(stage.to_dict())
        assert rebuilt == stage

    def test_groups_follow_edges(self, fig3):
        # {conv_c, conv_d, matmul_e}: c-d are chained (same group), e is alone.
        stage = Stage(("conv_c", "conv_d", "matmul_e"))
        groups = stage.groups(fig3)
        assert sorted(map(tuple, groups)) == [("conv_c", "conv_d"), ("matmul_e",)]

    def test_groups_are_topologically_ordered(self, fig3):
        stage = Stage(("conv_d", "conv_c"))
        assert stage.groups(fig3) == [["conv_c", "conv_d"]]


class TestConnectedGroups:
    def test_independent_ops_form_singletons(self, fig2):
        groups = connected_groups(fig2, ["conv_a", "conv_c", "conv_d"])
        assert sorted(map(tuple, groups)) == [("conv_a",), ("conv_c",), ("conv_d",)]

    def test_chain_is_one_group(self, fig2):
        assert connected_groups(fig2, ["conv_b", "conv_a"]) == [["conv_a", "conv_b"]]

    def test_concat_joins_branches(self, fig2):
        groups = connected_groups(fig2, ["conv_c", "conv_d", "concat"])
        assert len(groups) == 1


class TestScheduleValidation:
    def test_sequential_schedule_valid(self, fig2):
        schedule = sequential_schedule(fig2)
        schedule.validate(fig2)
        assert schedule.num_stages() == 5
        assert schedule.max_stage_size() == 1

    def test_missing_operator_rejected(self, fig2):
        schedule = Schedule(graph_name=fig2.name, stages=[Stage(("conv_a",))])
        with pytest.raises(ScheduleValidationError):
            schedule.validate(fig2)

    def test_duplicate_operator_rejected(self, fig2):
        schedule = sequential_schedule(fig2)
        schedule.append(Stage(("conv_a",)))
        with pytest.raises(ScheduleValidationError):
            schedule.validate(fig2)

    def test_unknown_operator_rejected(self, fig2):
        schedule = sequential_schedule(fig2)
        schedule.stages[0] = Stage(("made_up",))
        with pytest.raises(ScheduleValidationError):
            schedule.validate(fig2)

    def test_dependency_violation_rejected(self, fig2):
        # conv_b scheduled before its producer conv_a.
        schedule = Schedule(
            graph_name=fig2.name,
            stages=[
                Stage(("conv_b",)),
                Stage(("conv_a", "conv_c", "conv_d")),
                Stage(("concat",)),
            ],
        )
        with pytest.raises(ScheduleValidationError):
            schedule.validate(fig2)

    def test_same_stage_dependency_allowed(self, fig2):
        # Producer and consumer may share a stage (they land in the same group).
        schedule = Schedule(
            graph_name=fig2.name,
            stages=[Stage(("conv_a", "conv_b")), Stage(("conv_c", "conv_d")), Stage(("concat",))],
        )
        schedule.validate(fig2)


class TestScheduleUtilities:
    def test_operators_and_stage_of(self, fig2):
        schedule = sequential_schedule(fig2)
        assert set(schedule.operators()) == set(fig2.schedulable_names())
        assert schedule.stage_of("concat") == 4
        with pytest.raises(KeyError):
            schedule.stage_of("nope")

    def test_strategy_counts(self, fig2):
        schedule = sequential_schedule(fig2)
        assert schedule.strategy_counts() == {"concurrent execution": 5}

    def test_describe_mentions_groups(self, fig2):
        schedule = greedy_schedule(fig2)
        text = schedule.describe(fig2)
        assert "groups" in text
        assert "stage" in text

    def test_serialization_roundtrip(self, fig2, tmp_path):
        schedule = greedy_schedule(fig2)
        path = schedule.save(tmp_path / "sched.json")
        loaded = Schedule.load(path)
        assert loaded.to_dict() == schedule.to_dict()
        loaded.validate(fig2)


class TestBaselines:
    def test_sequential_is_topological(self, fig3):
        schedule = sequential_schedule(fig3)
        order = [stage.operators[0] for stage in schedule.stages]
        assert order.index("conv_a") < order.index("conv_c") < order.index("conv_d")

    def test_greedy_first_stage_holds_all_ready_ops(self, fig2):
        schedule = greedy_schedule(fig2)
        assert set(schedule.stages[0].operators) == {"conv_a", "conv_c", "conv_d"}
        assert set(schedule.stages[1].operators) == {"conv_b"}
        assert schedule.num_stages() == 3

    def test_greedy_max_stage_size_cap(self, fig2):
        schedule = greedy_schedule(fig2, max_stage_size=2)
        assert schedule.max_stage_size() <= 2
        schedule.validate(fig2)

    def test_greedy_on_full_network(self):
        graph = build_model("squeezenet")
        schedule = greedy_schedule(graph)
        schedule.validate(graph)
        assert schedule.num_stages() < len(graph.operators())

    def test_baselines_cover_whole_graph(self):
        graph = figure2_block()
        for schedule in (sequential_schedule(graph), greedy_schedule(graph)):
            assert set(schedule.operators()) == set(graph.schedulable_names())
