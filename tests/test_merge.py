"""Unit tests for the operator-merge strategy."""

from __future__ import annotations

import pytest

from repro.core import MergeError, build_merged_operator, can_merge, why_not_mergeable
from repro.ir import Conv2d, GraphBuilder, TensorShape
from repro.models import build_model, figure2_block


@pytest.fixture
def branchy():
    """Input feeding three 1x1/3x3/5x5 convolutions plus one strided conv."""
    builder = GraphBuilder("branchy", TensorShape(1, 64, 14, 14))
    x = builder.input_name
    with builder.block("b"):
        builder.conv2d("c1", x, out_channels=32, kernel=1)
        builder.conv2d("c3", x, out_channels=48, kernel=3)
        builder.conv2d("c5", x, out_channels=16, kernel=5)
        builder.conv2d("c_stride", x, out_channels=32, kernel=3, stride=2)
        builder.conv2d("c_noact", x, out_channels=32, kernel=3, activation=None)
        builder.sep_conv2d("sep", x, out_channels=32, kernel=3)
    return builder.build()


class TestEligibility:
    def test_same_input_convs_mergeable(self, branchy):
        assert can_merge(branchy, ["c1", "c3", "c5"])
        assert why_not_mergeable(branchy, ["c1", "c3"]) is None

    def test_single_operator_not_a_merge(self, branchy):
        assert not can_merge(branchy, ["c1"])

    def test_different_stride_not_mergeable(self, branchy):
        reason = why_not_mergeable(branchy, ["c3", "c_stride"])
        assert reason is not None and "stride" in reason

    def test_different_activation_not_mergeable(self, branchy):
        assert not can_merge(branchy, ["c3", "c_noact"])

    def test_sep_conv_not_mergeable(self, branchy):
        assert not can_merge(branchy, ["sep", "c3"])
        assert not can_merge(branchy, ["sep", "sep"])

    def test_different_inputs_not_mergeable(self, fig2):
        # conv_b consumes conv_a's output, conv_c consumes the graph input.
        assert not can_merge(fig2, ["conv_b", "conv_c"])

    def test_figure3_a_b_mergeable(self, fig3):
        assert can_merge(fig3, ["conv_a", "conv_b"])

    def test_fire_module_expansions_mergeable(self):
        graph = build_model("squeezenet")
        assert can_merge(graph, ["fire2_expand1x1", "fire2_expand3x3"])

    def test_inception_c_1x3_3x1_mergeable(self):
        graph = build_model("inception_v3")
        assert can_merge(graph, ["mixed_7c_b3_1x3", "mixed_7c_b3_3x1"])


class TestMergedOperator:
    def test_channel_stacking_and_kernel_padding(self, branchy):
        merged = build_merged_operator(branchy, ["c1", "c3", "c5"])
        conv = merged.merged
        assert isinstance(conv, Conv2d)
        assert conv.out_channels == 32 + 48 + 16
        assert conv.kernel == (5, 5)
        assert conv.output_shape == TensorShape(1, 96, 14, 14)
        assert merged.sections == (32, 48, 16)

    def test_splits_recover_original_outputs(self, branchy):
        merged = build_merged_operator(branchy, ["c1", "c3", "c5"])
        assert len(merged.splits) == 3
        for split, name in zip(merged.splits, ["c1", "c3", "c5"]):
            assert split.output_shape == branchy.nodes[name].output_shape
            assert not split.launches_kernel

    def test_padding_overhead_zero_for_equal_kernels(self):
        graph = figure2_block()
        merged = build_merged_operator(graph, ["conv_c", "conv_d"])
        original = graph.nodes["conv_c"].flops() + graph.nodes["conv_d"].flops()
        assert merged.merged.flops() == pytest.approx(original, rel=1e-6)
        assert merged.padding_overhead_flops == pytest.approx(0.0, abs=1e-6)

    def test_padding_overhead_positive_for_mixed_kernels(self, branchy):
        merged = build_merged_operator(branchy, ["c1", "c3"])
        assert merged.padding_overhead_flops > 0

    def test_merged_preserves_spatial_grid_for_asymmetric_kernels(self):
        graph = build_model("inception_v3")
        merged = build_merged_operator(graph, ["mixed_7c_b3_1x3", "mixed_7c_b3_3x1"])
        assert merged.merged.kernel == (3, 3)
        assert merged.merged.output_shape.height == graph.nodes["mixed_7c_b3_1x3"].output_shape.height

    def test_merge_reads_shared_input_once(self, branchy):
        merged = build_merged_operator(branchy, ["c1", "c3"])
        individual_reads = branchy.nodes["c1"].input_bytes() + branchy.nodes["c3"].input_bytes()
        assert merged.merged.input_bytes() == pytest.approx(individual_reads / 2)

    def test_merge_error_on_ineligible_sets(self, branchy, fig2):
        with pytest.raises(MergeError):
            build_merged_operator(branchy, ["c3", "c_stride"])
        with pytest.raises(MergeError):
            build_merged_operator(fig2, ["conv_b", "conv_c"])
        with pytest.raises(MergeError):
            build_merged_operator(branchy, ["c1"])

    def test_source_names_recorded(self, branchy):
        merged = build_merged_operator(branchy, ["c1", "c3"])
        assert merged.source_names == ("c1", "c3")
        assert "c1" in merged.merged.name and "c3" in merged.merged.name
