"""Unit tests for the experiment harness (fast experiments only)."""

from __future__ import annotations


import pytest

from repro.experiments import (
    ExperimentTable,
    default_context,
    geometric_mean,
    normalize_to_best,
    run_figure1,
    run_figure2,
    run_figure8,
    run_figure13,
    run_table2,
)
from repro.experiments.fig02_motivating import summarize_figure2


class TestTableUtilities:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)  # zeros ignored

    def test_normalize_to_best(self):
        normalized = normalize_to_best({"a": 2.0, "b": 4.0, "c": 0.0, "d": float("inf")})
        assert normalized["b"] == 1.0
        assert normalized["a"] == 0.5
        assert normalized["c"] == 0.0
        assert normalized["d"] == 0.0

    def test_normalize_all_failed(self):
        assert normalize_to_best({"a": 0.0}) == {"a": 0.0}

    def test_experiment_table_rendering(self):
        table = ExperimentTable("x", "Test table", ["name", "value", "flag"])
        table.add_row(name="alpha", value=1.23456, flag=True)
        table.add_row(name="beta", value=float("inf"), flag=False)
        text = table.to_text()
        assert "Test table" in text
        assert "alpha" in text and "1.235" in text
        assert "OOM" in text
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "name,value,flag"

    def test_table_accessors(self):
        table = ExperimentTable("x", "t", ["k", "v"])
        table.add_row(k="a", v=2.0)
        table.add_row(k="b", v=8.0)
        assert table.column("v") == [2.0, 8.0]
        assert table.row_by("k", "b")["v"] == 8.0
        with pytest.raises(KeyError):
            table.row_by("k", "zzz")
        assert table.summary(["v"])["v"] == pytest.approx(4.0)

    def test_csv_writes_file(self, tmp_path):
        table = ExperimentTable("x", "t", ["a"])
        table.add_row(a=1)
        path = tmp_path / "out" / "t.csv"
        table.to_csv(path)
        assert path.read_text().startswith("a")


class TestFastExperiments:
    def test_figure1_trend_directions(self):
        table = run_figure1()
        rows = table.rows
        assert [row["year"] for row in rows] == [2013, 2015, 2018]
        # FLOPs per convolution falls, #convs and peak performance rise.
        assert rows[0]["avg_mflops_per_conv"] > 10 * rows[2]["avg_mflops_per_conv"]
        assert rows[2]["num_convolutions"] > rows[0]["num_convolutions"]
        assert rows[2]["device_peak_gflops"] > rows[0]["device_peak_gflops"]

    def test_figure2_schedule_ordering(self):
        table = run_figure2()
        summary = summarize_figure2(table)
        assert set(summary) == {"sequential", "greedy", "ios-both"}
        assert summary["ios-both"]["total_latency_ms"] < summary["greedy"]["total_latency_ms"]
        assert summary["greedy"]["total_latency_ms"] < summary["sequential"]["total_latency_ms"]
        assert summary["ios-both"]["avg_utilization"] > summary["sequential"]["avg_utilization"]

    def test_figure8_ios_has_more_active_warps(self):
        table = run_figure8()
        ios_row = table.row_by("schedule", "ios-both")
        seq_row = table.row_by("schedule", "sequential")
        assert ios_row["active_warp_ratio_vs_sequential"] > 1.2
        assert seq_row["active_warp_ratio_vs_sequential"] == pytest.approx(1.0)
        assert ios_row["latency_ms"] < seq_row["latency_ms"]

    def test_figure13_bound_is_tight(self):
        table = run_figure13(configs=[(1, 2), (2, 2), (2, 3)])
        for row in table.rows:
            assert row["ratio"] == pytest.approx(1.0)
            assert row["transitions"] < row["bound"]

    def test_table2_reports_benchmark_suite(self):
        table = run_table2(models=["inception_v3", "squeezenet"])
        inception = table.row_by("network", "inception_v3")
        assert inception["paper_operators"] == 119
        assert 100 <= inception["num_operators"] <= 140
        squeeze = table.row_by("network", "squeezenet")
        assert squeeze["num_blocks"] == 10

    def test_experiment_context_caches_graphs_and_searches(self, v100):
        ctx = default_context("v100")
        graph_a = ctx.graph("figure2_block", 1)
        graph_b = ctx.graph("figure2_block", 1)
        assert graph_a is graph_b
        first = ctx.ios_result(graph_a)
        second = ctx.ios_result(graph_a)
        assert first is second

    def test_context_schedule_labels(self):
        ctx = default_context("v100")
        graph = ctx.graph("figure2_block", 1)
        with pytest.raises(KeyError):
            ctx.schedule(graph, "alien-schedule")
