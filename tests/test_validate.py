"""Tests for ir/validate.py: every documented invariant must fire.

``validate_graph`` documents six structural invariants; each test below
constructs a graph violating exactly one of them and asserts the matching
:class:`GraphValidationError`.  (The builder enforces most invariants during
construction, so several violations are produced by surgically corrupting an
already-built graph — exactly what a buggy rewrite pass would do, which is why
the pass manager re-validates after every pass.)
"""

from __future__ import annotations

import pytest

from repro.ir import (
    Graph,
    GraphBuilder,
    GraphValidationError,
    Placeholder,
    Relu,
    TensorShape,
    validate_graph,
)

SHAPE = TensorShape(1, 4, 8, 8)


def valid_graph():
    b = GraphBuilder("ok", SHAPE)
    with b.block("one"):
        x = b.conv2d("conv1", b.input_name, out_channels=4, kernel=3)
    with b.block("two"):
        b.conv2d("conv2", x, out_channels=4, kernel=3)
    return b.build()


def test_valid_graph_passes():
    validate_graph(valid_graph())


class TestInvariant1Placeholders:
    def test_zero_placeholders(self):
        graph = Graph("empty")
        graph.add_block("blk")
        with pytest.raises(GraphValidationError, match="exactly one input placeholder"):
            validate_graph(graph)

    def test_two_placeholders(self):
        graph = Graph("two_inputs")
        graph.add_node(Placeholder("in1", SHAPE))
        graph.add_node(Placeholder("in2", SHAPE))
        with pytest.raises(GraphValidationError, match="found 2"):
            validate_graph(graph)


class TestInvariant2Acyclicity:
    def test_cycle_is_detected(self):
        graph = valid_graph()
        graph.nodes["conv1"].inputs = ("conv2",)
        graph._consumers["conv2"].append("conv1")
        graph._consumers["input"].remove("conv1")
        with pytest.raises(GraphValidationError, match="cycle"):
            validate_graph(graph)


class TestInvariant3Inputs:
    def test_operator_without_inputs(self):
        graph = valid_graph()
        graph.nodes["conv2"].inputs = ()
        with pytest.raises(GraphValidationError, match="has no inputs"):
            validate_graph(graph)

    def test_unknown_input_reference(self):
        graph = valid_graph()
        graph.nodes["conv2"].inputs = ("ghost",)
        with pytest.raises(GraphValidationError, match="unknown input 'ghost'"):
            validate_graph(graph)


class TestInvariant4BoundShapes:
    def test_unbound_output_shape(self):
        graph = valid_graph()
        graph.nodes["conv2"].output_shape = None
        with pytest.raises(GraphValidationError, match="no bound output shape"):
            validate_graph(graph)


class TestInvariant5BlockMembership:
    def test_operator_in_no_block(self):
        graph = valid_graph()
        graph.blocks[1].node_names.remove("conv2")
        with pytest.raises(GraphValidationError, match="does not belong to any block"):
            validate_graph(graph)

    def test_operator_in_two_blocks(self):
        graph = valid_graph()
        graph.blocks[1].node_names.append("conv1")
        with pytest.raises(GraphValidationError, match="belongs to both block"):
            validate_graph(graph)

    def test_block_references_unknown_node(self):
        graph = valid_graph()
        graph.blocks[0].node_names.append("ghost")
        with pytest.raises(GraphValidationError, match="references unknown node"):
            validate_graph(graph)


class TestInvariant6BlockOrder:
    def test_backward_edge_across_blocks(self):
        # conv2 (block "two") feeding a node in block "one" breaks sequential
        # block execution.
        graph = valid_graph()
        relu = Relu("late_relu", ["conv2"])
        graph.add_node(relu, graph.blocks[0])
        with pytest.raises(GraphValidationError, match="goes backwards across blocks"):
            validate_graph(graph)

    def test_placeholder_edges_are_exempt(self):
        # The single input placeholder belongs to no block; consuming it from
        # any block is fine.
        b = GraphBuilder("ph", SHAPE)
        with b.block("one"):
            b.conv2d("conv1", b.input_name, out_channels=4, kernel=3)
        with b.block("two"):
            b.conv2d("conv2", b.input_name, out_channels=4, kernel=3)
        validate_graph(b.build())
