"""Tests for dynamic batching and batch-size selection."""

from __future__ import annotations

import pytest

from repro.models import chain_graph
from repro.serve import (
    BatchPolicy,
    BatchSizeSelector,
    DynamicBatcher,
    InferenceRequest,
    ScheduleRegistry,
)


def request(request_id: int, arrival_ms: float, num_samples: int = 1) -> InferenceRequest:
    return InferenceRequest(
        request_id=request_id, model="m", arrival_ms=arrival_ms, num_samples=num_samples
    )


class TestDynamicBatcher:
    def test_fills_up_to_max_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=4, max_wait_ms=100.0))
        requests = [request(i, arrival_ms=float(i)) for i in range(8)]
        batches = batcher.form_batches(requests)
        assert [len(b) for b in batches] == [4, 4]
        assert [b.close_reason for b in batches] == ["full", "full"]
        assert batches[0].formed_ms == 3.0  # closed by the 4th arrival

    def test_timeout_flushes_partial_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=8, max_wait_ms=5.0))
        requests = [request(0, 0.0), request(1, 1.0), request(2, 50.0)]
        batches = batcher.form_batches(requests)
        assert [len(b) for b in batches] == [2, 1]
        assert batches[0].close_reason == "timeout"
        assert batches[0].formed_ms == 5.0  # oldest arrival + max_wait
        assert batches[1].close_reason == "drain"

    def test_drain_closes_the_tail(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=8, max_wait_ms=5.0))
        batches = batcher.form_batches([request(0, 0.0)])
        assert len(batches) == 1
        assert batches[0].close_reason == "drain"
        assert batches[0].formed_ms == 5.0

    def test_sample_counts_not_request_counts_fill_batches(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=4, max_wait_ms=100.0))
        requests = [request(0, 0.0, num_samples=3), request(1, 1.0, num_samples=3)]
        batches = batcher.form_batches(requests)
        # 3 + 3 > 4, so the second request cannot join the first batch.
        assert [b.num_samples for b in batches] == [3, 3]

    def test_oversized_request_forms_its_own_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=4, max_wait_ms=100.0))
        batches = batcher.form_batches([request(0, 0.0, num_samples=9)])
        assert [b.num_samples for b in batches] == [9]
        assert batches[0].close_reason == "full"

    def test_out_of_order_arrivals_rejected(self):
        batcher = DynamicBatcher(BatchPolicy())
        with pytest.raises(ValueError):
            batcher.form_batches([request(0, 5.0), request(1, 1.0)])

    def test_batching_is_deterministic(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=3, max_wait_ms=2.0))
        requests = [request(i, arrival_ms=i * 0.7, num_samples=1 + i % 2) for i in range(20)]
        first = batcher.form_batches(requests)
        second = batcher.form_batches(requests)
        assert [(len(b), b.formed_ms, b.close_reason) for b in first] == [
            (len(b), b.formed_ms, b.close_reason) for b in second
        ]

    @pytest.mark.parametrize("kwargs", [
        {"max_batch_size": 0},
        {"max_wait_ms": -1.0},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


class TestBatchSizeSelector:
    @pytest.fixture
    def selector(self, v100):
        registry = ScheduleRegistry(
            graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
        )
        return BatchSizeSelector(registry, batch_sizes=(1, 2, 4, 8))

    def test_selects_a_fitting_rung(self, selector, v100):
        for samples in range(1, 9):
            rung = selector.select("m", samples, v100)
            assert rung >= samples
            assert rung in selector.batch_sizes

    def test_selection_is_memoised(self, selector, v100):
        selector.select("m", 3, v100)
        searches_after_first = selector.registry.stats.searches
        selector.select("m", 3, v100)
        assert selector.registry.stats.searches == searches_after_first
        assert ("m", "v100", 3) in selector._choice_cache

    def test_padding_never_exceeds_next_rung_when_cheapest(self, selector, v100):
        # A chain at batch 1 must never be served by the batch-8 schedule if
        # the batch-1 schedule is cheaper — the selector cross-evaluates.
        rung = selector.select("m", 1, v100)
        latency_chosen = selector._candidate_latency("m", rung, v100)
        for other in selector.batch_sizes:
            assert latency_chosen <= selector._candidate_latency("m", other, v100)

    def test_legacy_three_argument_measure_callables_still_work(self, v100):
        # The pre-engine measure contract was (graph, schedule, device); such
        # callables must keep working alongside plan-aware ones.
        registry = ScheduleRegistry(
            graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
        )
        calls = []

        def legacy_measure(graph, schedule, device):
            calls.append(graph.batch_size)
            return float(graph.batch_size)

        selector = BatchSizeSelector(registry, batch_sizes=(1, 2), measure=legacy_measure)
        assert selector.select("m", 1, v100) == 1
        assert calls  # the legacy callable was invoked without a plan kwarg

    def test_plan_aware_measure_receives_the_compiled_plan(self, v100):
        registry = ScheduleRegistry(
            graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
        )
        plans = []

        def plan_measure(graph, schedule, device, plan=None):
            plans.append(plan)
            return 1.0

        selector = BatchSizeSelector(registry, batch_sizes=(1,), measure=plan_measure)
        selector.select("m", 1, v100)
        compiled = registry.get_compiled("m", 1, v100)
        assert plans and plans[0] is compiled.plan

    def test_oversized_demand_raises(self, selector, v100):
        with pytest.raises(ValueError, match="exceeds the ladder maximum"):
            selector.select("m", 9, v100)

    def test_ladder_validation(self, v100):
        registry = ScheduleRegistry(
            graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
        )
        with pytest.raises(ValueError):
            BatchSizeSelector(registry, batch_sizes=())
        with pytest.raises(ValueError):
            BatchSizeSelector(registry, batch_sizes=(1, 1, 2))
