"""Tests for serving metrics aggregation."""

from __future__ import annotations

import pytest

from repro.serve import InferenceRequest, RequestRecord, build_report, percentile
from repro.serve.registry import RegistryStats


def record(request_id: int, arrival: float, completed: float,
           dispatched: float | None = None) -> RequestRecord:
    dispatched = arrival if dispatched is None else dispatched
    return RequestRecord(
        request=InferenceRequest(request_id=request_id, model="m", arrival_ms=arrival),
        batched_ms=dispatched,
        dispatch_ms=dispatched,
        completion_ms=completed,
        executed_batch_size=1,
        worker_id=0,
    )


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestBuildReport:
    def test_throughput_uses_the_full_span(self):
        records = [record(0, 0.0, 50.0), record(1, 100.0, 200.0)]
        report = build_report(records, num_batches=2, batch_size_counts={1: 2},
                              registry_stats=RegistryStats(), worker_summary=[])
        # 2 requests over 200 ms of virtual time.
        assert report.throughput_rps == pytest.approx(10.0)
        assert report.makespan_ms == pytest.approx(200.0)

    def test_latency_and_queue_delay_summaries(self):
        records = [
            record(0, 0.0, 4.0, dispatched=1.0),
            record(1, 0.0, 8.0, dispatched=2.0),
        ]
        report = build_report(records, num_batches=2, batch_size_counts={1: 2},
                              registry_stats=RegistryStats(), worker_summary=[])
        assert report.latency.mean_ms == pytest.approx(6.0)
        assert report.latency.max_ms == pytest.approx(8.0)
        assert report.queue_delay.mean_ms == pytest.approx(1.5)

    def test_mean_batch_occupancy(self):
        records = [record(i, 0.0, 1.0) for i in range(6)]
        report = build_report(records, num_batches=2, batch_size_counts={4: 1, 2: 1},
                              registry_stats=RegistryStats(), worker_summary=[])
        assert report.mean_batch_occupancy == pytest.approx(3.0)
        assert list(report.batch_size_counts) == [2, 4]

    def test_describe_mentions_the_headline_numbers(self):
        records = [record(0, 0.0, 2.0)]
        report = build_report(records, num_batches=1, batch_size_counts={1: 1},
                              registry_stats=RegistryStats(searches=3),
                              worker_summary=[{"worker": 0, "device": "v100",
                                              "batches": 1, "samples": 1,
                                              "busy_ms": 2.0, "utilization": 1.0}])
        text = report.describe()
        assert "1 requests" in text
        assert "3 searches" in text
        assert "worker 0 (v100)" in text

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            build_report([], num_batches=0, batch_size_counts={},
                         registry_stats=RegistryStats(), worker_summary=[])
