"""Tests for serving metrics aggregation."""

from __future__ import annotations

import pytest

from repro.serve import (
    InferenceRequest,
    LatencySummary,
    RejectedRequest,
    RequestRecord,
    build_report,
    build_slo_summary,
    percentile,
)
from repro.serve.registry import RegistryStats


def record(request_id: int, arrival: float, completed: float,
           dispatched: float | None = None, **request_kwargs) -> RequestRecord:
    dispatched = arrival if dispatched is None else dispatched
    return RequestRecord(
        request=InferenceRequest(request_id=request_id, model="m",
                                 arrival_ms=arrival, **request_kwargs),
        batched_ms=dispatched,
        dispatch_ms=dispatched,
        completion_ms=completed,
        executed_batch_size=1,
        worker_id=0,
    )


def rejection(request_id: int, arrival: float, reason: str = "shed",
              **request_kwargs) -> RejectedRequest:
    return RejectedRequest(
        request=InferenceRequest(request_id=request_id, model="m",
                                 arrival_ms=arrival, **request_kwargs),
        rejected_ms=arrival,
        reason=reason,
    )


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestBuildReport:
    def test_throughput_uses_the_full_span(self):
        records = [record(0, 0.0, 50.0), record(1, 100.0, 200.0)]
        report = build_report(records, num_batches=2, batch_size_counts={1: 2},
                              registry_stats=RegistryStats(), worker_summary=[])
        # 2 requests over 200 ms of virtual time.
        assert report.throughput_rps == pytest.approx(10.0)
        assert report.makespan_ms == pytest.approx(200.0)

    def test_latency_and_queue_delay_summaries(self):
        records = [
            record(0, 0.0, 4.0, dispatched=1.0),
            record(1, 0.0, 8.0, dispatched=2.0),
        ]
        report = build_report(records, num_batches=2, batch_size_counts={1: 2},
                              registry_stats=RegistryStats(), worker_summary=[])
        assert report.latency.mean_ms == pytest.approx(6.0)
        assert report.latency.max_ms == pytest.approx(8.0)
        assert report.queue_delay.mean_ms == pytest.approx(1.5)

    def test_mean_batch_occupancy(self):
        records = [record(i, 0.0, 1.0) for i in range(6)]
        report = build_report(records, num_batches=2, batch_size_counts={4: 1, 2: 1},
                              registry_stats=RegistryStats(), worker_summary=[])
        assert report.mean_batch_occupancy == pytest.approx(3.0)
        assert list(report.batch_size_counts) == [2, 4]

    def test_describe_mentions_the_headline_numbers(self):
        records = [record(0, 0.0, 2.0)]
        report = build_report(records, num_batches=1, batch_size_counts={1: 1},
                              registry_stats=RegistryStats(searches=3),
                              worker_summary=[{"worker": 0, "device": "v100",
                                              "batches": 1, "samples": 1,
                                              "busy_ms": 2.0, "utilization": 1.0}])
        text = report.describe()
        assert "1 requests" in text
        assert "3 searches" in text
        assert "worker 0 (v100)" in text

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            build_report([], num_batches=0, batch_size_counts={},
                         registry_stats=RegistryStats(), worker_summary=[])

    def test_no_slo_summary_without_slo_signals(self):
        report = build_report([record(0, 0.0, 2.0)], num_batches=1,
                              batch_size_counts={1: 1},
                              registry_stats=RegistryStats(), worker_summary=[])
        assert report.slo_summary is None

    def test_all_rejected_run_builds_an_empty_latency_report(self):
        report = build_report(
            [], num_batches=0, batch_size_counts={},
            registry_stats=RegistryStats(), worker_summary=[],
            rejected=[rejection(0, 0.0), rejection(1, 1.0)],
        )
        assert report.num_requests == 0
        assert report.latency == LatencySummary.empty()
        assert report.slo_summary.offered == 2
        assert report.slo_summary.rejected == 2
        assert report.slo_summary.attainment_rate == 0.0


class TestSloSummary:
    def test_attainment_counts_rejections_as_misses(self):
        records = [
            record(0, 0.0, 5.0, deadline_ms=10.0),   # met
            record(1, 0.0, 20.0, deadline_ms=10.0),  # violated
            record(2, 0.0, 5.0),                     # no SLO: counts as met
        ]
        rejected = [rejection(3, 0.0, deadline_ms=10.0)]
        slo = build_slo_summary(records, rejected)
        assert slo.offered == 4
        assert slo.admitted == 3
        assert slo.rejected == 1
        assert slo.met == 2
        assert slo.violations == 1
        assert slo.with_deadline == 2
        assert slo.attainment_rate == pytest.approx(0.5)

    def test_rejection_reasons_are_tallied(self):
        slo = build_slo_summary([], [
            rejection(0, 0.0, reason="predicted-deadline-miss"),
            rejection(1, 0.0, reason="predicted-deadline-miss"),
            rejection(2, 0.0, reason="low-priority-shed"),
        ])
        assert slo.rejection_reasons == {
            "predicted-deadline-miss": 2,
            "low-priority-shed": 1,
        }

    def test_per_priority_breakdown_is_highest_first(self):
        records = [
            record(0, 0.0, 5.0, deadline_ms=10.0, priority=1),
            record(1, 0.0, 20.0, deadline_ms=10.0, priority=0),
        ]
        rejected = [rejection(2, 0.0, deadline_ms=10.0, priority=0)]
        slo = build_slo_summary(records, rejected)
        assert [row.priority for row in slo.per_priority] == [1, 0]
        high, low = slo.per_priority
        assert (high.offered, high.met, high.attainment) == (1, 1, 1.0)
        assert (low.offered, low.met, low.attainment) == (2, 0, 0.0)
        assert low.rejected == 1

    def test_per_burst_breakdown(self):
        records = [
            record(0, 0.0, 5.0, deadline_ms=10.0, burst_id=0),
            record(1, 0.0, 30.0, deadline_ms=10.0, burst_id=1),
        ]
        rejected = [rejection(2, 0.0, deadline_ms=10.0, burst_id=1)]
        slo = build_slo_summary(records, rejected)
        assert [row.burst_id for row in slo.per_burst] == [0, 1]
        first, second = slo.per_burst
        assert first.attainment == 1.0
        assert second.offered == 2
        assert second.attainment == 0.0

    def test_describe_mentions_attainment_and_rejections(self):
        slo = build_slo_summary(
            [record(0, 0.0, 5.0, deadline_ms=10.0)],
            [rejection(1, 0.0, reason="predicted-deadline-miss")],
        )
        text = slo.describe()
        assert "1/2 met" in text
        assert "predicted-deadline-miss×1" in text

    def test_deadline_met_property(self):
        assert record(0, 0.0, 5.0, deadline_ms=10.0).deadline_met
        assert not record(0, 0.0, 15.0, deadline_ms=10.0).deadline_met
        assert record(0, 0.0, 1e9).deadline_met  # no SLO is never violated
