"""Tests for the inference service composition root."""

from __future__ import annotations

import pytest

from repro.models import chain_graph
from repro.serve import (
    BatchPolicy,
    InferenceRequest,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
)


def toy_registry(root=None):
    return ScheduleRegistry(
        root=root, graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
    )


def toy_service(root=None, **overrides) -> InferenceService:
    overrides.setdefault("model", "toy")
    overrides.setdefault("devices", ("v100",))
    overrides.setdefault("batch_sizes", (1, 2, 4))
    overrides.setdefault("policy", BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
    return InferenceService(ServingConfig(**overrides), registry=toy_registry(root))


def requests_for(count: int, gap_ms: float = 0.5, model: str = "toy",
                 num_samples: int = 1) -> list[InferenceRequest]:
    return [
        InferenceRequest(request_id=i, model=model, arrival_ms=i * gap_ms,
                         num_samples=num_samples)
        for i in range(count)
    ]


class TestInferenceService:
    def test_every_request_is_answered_exactly_once(self):
        service = toy_service()
        report = service.run(requests_for(50))
        assert report.num_requests == 50
        assert sorted(r.request.request_id for r in report.records) == list(range(50))

    def test_latency_decomposition_is_consistent(self):
        service = toy_service()
        report = service.run(requests_for(30))
        for record in report.records:
            assert record.completion_ms >= record.dispatch_ms >= record.batched_ms
            assert record.batched_ms >= record.request.arrival_ms
            assert record.latency_ms == pytest.approx(
                record.queue_delay_ms + record.service_time_ms
            )

    def test_batches_respect_the_ladder(self):
        service = toy_service()
        report = service.run(requests_for(40, num_samples=2))
        assert set(report.batch_size_counts) <= {1, 2, 4}
        assert report.num_batches == sum(report.batch_size_counts.values())

    def test_worker_samples_count_real_demand_not_padding(self):
        # Requests arriving far apart execute alone and get padded up to a
        # rung; the worker accounting must still count one sample each.
        service = toy_service()
        report = service.run(requests_for(10, gap_ms=50.0))
        assert sum(row["samples"] for row in report.worker_summary) == 10
        assert report.num_samples == 10

    def test_report_registry_stats_is_a_snapshot(self):
        registry = toy_registry()
        first = InferenceService(
            ServingConfig(model="toy", devices=("v100",), batch_sizes=(1, 2, 4)),
            registry=registry,
        ).run(requests_for(10))
        searches_after_first = first.registry_stats.searches
        InferenceService(
            ServingConfig(model="toy", devices=("v100",), batch_sizes=(1, 2, 4)),
            registry=registry,
        ).run(requests_for(10))
        assert first.registry_stats.searches == searches_after_first
        assert first.registry_stats is not registry.stats

    def test_selector_shares_the_pool_latency_cache(self):
        service = toy_service()
        service.run(requests_for(20, num_samples=2))
        # Selection cross-evaluated the ladder; every measurement must have
        # landed in the pool's shared cache rather than a parallel one.
        assert service.selector._latency_cache
        assert len(service.pool._result_cache) >= len(service.selector._latency_cache)

    def test_pool_executes_the_engine_lowered_plans(self):
        # The pool must never re-lower what the engine already produced: every
        # cached plan is the identical ExecutionPlan object carried by the
        # registry's compiled models.
        service = toy_service()
        service.run(requests_for(20, num_samples=2))
        assert service.pool._plan_cache
        engine_plans = {
            id(compiled.plan) for compiled in service.registry._cache.values()
        }
        for plan in service.pool._plan_cache.values():
            assert id(plan) in engine_plans

    def test_wrong_model_rejected(self):
        service = toy_service()
        with pytest.raises(ValueError, match="serves"):
            service.run(requests_for(1, model="other"))

    def test_oversized_request_rejected(self):
        service = toy_service()
        with pytest.raises(ValueError, match="largest specialised batch size"):
            service.run(requests_for(1, num_samples=64))

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            toy_service().run([])

    def test_unsorted_input_is_tolerated(self):
        service = toy_service()
        requests = list(reversed(requests_for(10)))
        report = service.run(requests)
        assert report.num_requests == 10

    def test_warmup_moves_searches_off_the_request_path(self, tmp_path):
        service = toy_service(root=tmp_path)
        service.warmup()
        searches_after_warmup = service.registry.stats.searches
        assert searches_after_warmup == 3  # one per ladder rung
        service.run(requests_for(20))
        assert service.registry.stats.searches == searches_after_warmup

    def test_multiple_workers_share_the_load_under_pressure(self):
        # Batches arrive back-to-back faster than one worker can drain them,
        # so the second worker must pick some up.
        service = toy_service(devices=("v100", "v100"),
                              policy=BatchPolicy(max_batch_size=1, max_wait_ms=0.0))
        report = service.run(requests_for(40, gap_ms=0.01))
        busy_workers = [row for row in report.worker_summary if row["batches"] > 0]
        assert len(busy_workers) == 2

    def test_unbatched_config_serves_each_request_alone(self):
        unbatched = InferenceService(
            ServingConfig.unbatched(model="toy", devices=("v100",), batch_sizes=(1, 2, 4)),
            registry=toy_registry(),
        )
        report = unbatched.run(requests_for(12, num_samples=2))
        assert report.num_batches == 12

    def test_heterogeneous_pool_uses_per_device_schedules(self, tmp_path):
        service = toy_service(devices=("v100", "k80"), root=tmp_path)
        service.warmup()
        # 3 rungs × 2 devices: the registry specialises per device.
        assert service.registry.stats.searches == 6
        report = service.run(requests_for(30, gap_ms=0.05))
        assert report.num_requests == 30
