"""End-to-end observability: trace determinism, report equivalence, content.

The acceptance bar of the observability layer:

* the same seed and config produce a **byte-identical** trace JSON (the
  serving side runs on the virtual clock; the compile side gets a
  deterministic injected clock);
* a traced run's :meth:`~repro.serve.metrics.ServingReport.describe` is
  byte-identical to the untraced same-seed run — tracing observes, never
  perturbs;
* the trace passes the exporter's schema validation and actually contains
  compile-stage spans, per-request lifecycle pairs and kernel-level child
  events on per-worker tracks.
"""

from __future__ import annotations

import json

from repro.models import chain_graph
from repro.obs import Tracer, chrome_trace_json, validate_chrome_trace
from repro.serve import (
    BatchPolicy,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
)


def ticking_clock(step: float = 0.25):
    """Deterministic wall clock for the compile-side spans."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


def scenario_requests():
    """A fixed seeded deadline-carrying workload (virtual-clock arrivals)."""
    return TrafficGenerator(
        TrafficConfig(
            model="toy", pattern="bursty", num_requests=30, rate_rps=2000.0,
            burst_size=8, burst_gap_ms=10.0, sample_sizes=(1, 2),
            sample_weights=(0.6, 0.4), slo_ms=25.0, seed=3,
        )
    ).generate()


def traced_service(tracer: Tracer | None) -> InferenceService:
    """A fresh mixed-fleet deadline-admission service (no shared caches)."""
    registry = ScheduleRegistry(
        graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
    )
    config = ServingConfig(
        model="toy", devices=("v100", "k80"), batch_sizes=(1, 2, 4),
        policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0),
        admission="deadline",
    )
    return InferenceService(config, registry=registry, tracer=tracer)


def run_traced() -> Tracer:
    tracer = Tracer(clock=ticking_clock())
    traced_service(tracer).run(scenario_requests())
    return tracer


class TestTraceDeterminism:
    def test_same_seed_and_config_trace_is_byte_identical(self):
        from repro.core import clear_schedule_memo

        first = chrome_trace_json(run_traced())
        # Cold-compile the second run too: the process-wide schedule memo
        # would otherwise (correctly) zero its compile-span search counters.
        clear_schedule_memo()
        second = chrome_trace_json(run_traced())
        assert first == second

    def test_traced_report_equals_the_untraced_one(self):
        traced = traced_service(Tracer(clock=ticking_clock()))
        untraced = traced_service(None)
        traced_report = traced.run(scenario_requests())
        untraced_report = untraced.run(scenario_requests())
        assert traced_report.describe() == untraced_report.describe()


class TestTraceContent:
    def test_trace_passes_schema_validation(self):
        tracer = run_traced()
        document = json.loads(chrome_trace_json(tracer))
        assert validate_chrome_trace(document) == []

    def test_compile_requests_and_kernels_all_appear(self):
        tracer = run_traced()
        tracks = tracer.tracks()
        assert "compile/stages" in tracks
        assert "serving/requests" in tracks
        stage_names = {span.name for span in tracer.spans("compile/stages")}
        assert {"schedule", "lower"} <= stage_names
        # Kernel child events land on per-worker stream tracks.
        stream_tracks = [
            track for track in tracks
            if track.startswith("worker ") and "/stream " in track
        ]
        assert stream_tracks
        kernel_spans = [
            span for track in stream_tracks for span in tracer.spans(track)
        ]
        assert kernel_spans
        assert all(span.category == "kernel" for span in kernel_spans)

    def test_request_lifecycles_open_and_close_once_each(self):
        tracer = run_traced()
        begins = [
            r for r in tracer.records
            if r.kind == "async_begin" and r.category == "request"
            and r.name.startswith("request ")
        ]
        ends = [
            r for r in tracer.records
            if r.kind == "async_end" and r.category == "request"
            and r.name.startswith("request ")
        ]
        assert len(begins) == len(scenario_requests())
        assert sorted(r.correlation for r in begins) == sorted(
            r.correlation for r in ends
        )


class TestReportMetrics:
    def test_report_tallies_come_from_the_registry(self):
        report = traced_service(None).run(scenario_requests())
        metrics = report.metrics
        assert metrics is not None
        executions = metrics.get("serve.executions")
        assert report.num_batches == int(executions.total())
        assert report.batch_size_counts == {
            int(size): int(count)
            for size, count in executions.by_label("batch_size").items()
        }

    def test_worker_and_group_utilization_share_one_series(self):
        # The drift bug: per-worker and per-group utilisation used to be
        # computed from separate tallies.  Both now read the same
        # busy/lifetime gauges, so the per-device sums must agree exactly.
        report = traced_service(None).run(scenario_requests())
        busy_by_device: dict[str, float] = {}
        for row in report.worker_summary:
            busy_by_device[row["device"]] = (
                busy_by_device.get(row["device"], 0.0) + row["busy_ms"]
            )
        for group in report.device_summary:
            assert group["busy_ms"] == busy_by_device[group["device"]]
