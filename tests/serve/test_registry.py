"""Tests for the persistent schedule registry."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import Schedule, Stage
from repro.models import chain_graph
from repro.serve import RegistryError, RegistryKey, ScheduleRegistry


def chain_builder(model: str, batch_size: int):
    return chain_graph(length=3, batch_size=batch_size)


@pytest.fixture
def registry(tmp_path):
    return ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)


class TestLookupPath:
    def test_miss_compiles_then_memory_hits(self, registry, v100):
        schedule = registry.get("m", 1, v100)
        assert registry.stats.searches == 1
        again = registry.get("m", 1, v100)
        assert again is schedule
        assert registry.stats.memory_hits == 1
        assert registry.stats.searches == 1

    def test_compiled_schedule_is_persisted_and_reloaded(self, registry, tmp_path, v100):
        schedule = registry.get("m", 2, v100)
        path = registry.path_for(registry.key("m", 2, v100))
        assert path.exists()

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        reloaded = fresh.get("m", 2, v100)
        assert fresh.stats.searches == 0
        assert fresh.stats.disk_hits == 1
        assert reloaded == schedule

    def test_distinct_keys_get_distinct_entries(self, registry, v100, k80):
        registry.get("m", 1, v100)
        registry.get("m", 2, v100)
        registry.get("m", 1, k80)
        assert registry.stats.searches == 3
        assert registry.cached_batch_sizes("m", v100) == [1, 2]
        assert registry.cached_batch_sizes("m", k80) == [1]

    def test_in_memory_registry_never_touches_disk(self, v100):
        registry = ScheduleRegistry(root=None, graph_builder=chain_builder)
        registry.get("m", 1, v100)
        assert registry.path_for(registry.key("m", 1, v100)) is None
        assert registry.stats.searches == 1

    def test_warmup_then_zero_searches(self, registry, tmp_path, v100):
        registry.warmup("m", [1, 2, 4], v100)
        assert registry.stats.searches == 3

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.warmup("m", [1, 2, 4], v100)
        assert fresh.stats.searches == 0
        assert fresh.stats.disk_hits == 3


class TestPutAndEnumeration:
    def test_put_and_contains(self, registry, v100):
        graph = chain_builder("m", 1)
        schedule = Schedule(
            graph_name=graph.name, origin="handmade",
            stages=[Stage(operators=(name,)) for name in graph.schedulable_names()],
        )
        registry.put("m", 1, v100, schedule)
        assert registry.contains("m", 1, v100)
        assert registry.get("m", 1, v100) == schedule
        assert registry.stats.searches == 0

    def test_keys_merges_memory_and_disk(self, registry, tmp_path, v100):
        registry.get("alpha", 1, v100)
        registry.get("beta", 2, v100)
        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        assert fresh.keys() == [
            RegistryKey("alpha", 1, "v100", "ios-both"),
            RegistryKey("beta", 2, "v100", "ios-both"),
        ]

    def test_key_round_trips_through_filename(self):
        key = RegistryKey("m", 32, "rtx2080ti", "ios-merge")
        parsed = RegistryKey.from_path("m", Path(key.filename()))
        assert parsed == key


class TestFailureModes:
    def test_corrupted_entry_is_dropped_and_recompiled(self, registry, tmp_path, v100):
        registry.get("m", 1, v100)
        path = registry.path_for(registry.key("m", 1, v100))
        path.write_text("{not json")

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.get("m", 1, v100)
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.searches == 1
        # The rewritten entry must be valid again.
        assert Schedule.load(path).graph_name == "chain"

    def test_wrong_shape_json_is_dropped_and_recompiled(self, registry, tmp_path, v100):
        # Valid JSON of the wrong shape (here a list) must be treated exactly
        # like a truncated file, not crash the lookup.
        registry.get("m", 1, v100)
        path = registry.path_for(registry.key("m", 1, v100))
        path.write_text("[1, 2, 3]")

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.get("m", 1, v100)
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.searches == 1

    def test_entry_for_wrong_graph_raises(self, registry, tmp_path, v100):
        key = registry.key("m", 1, v100)
        path = registry.path_for(key)
        Schedule(graph_name="other_graph", stages=[Stage(operators=("x",))]).save(path)
        with pytest.raises(RegistryError):
            registry.get("m", 1, v100)

    def test_variant_is_part_of_the_key(self, tmp_path, v100):
        both = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder, variant="ios-both")
        merge = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder, variant="ios-merge")
        both.get("m", 1, v100)
        merge.get("m", 1, v100)
        assert merge.stats.searches == 1  # no cross-variant reuse
        assert both.path_for(both.key("m", 1, v100)) != merge.path_for(merge.key("m", 1, v100))
