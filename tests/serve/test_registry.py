"""Tests for the persistent schedule registry."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import Schedule, Stage
from repro.models import chain_graph
from repro.serve import RegistryError, RegistryKey, ScheduleRegistry


def chain_builder(model: str, batch_size: int):
    return chain_graph(length=3, batch_size=batch_size)


@pytest.fixture
def registry(tmp_path):
    return ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)


class TestLookupPath:
    def test_miss_compiles_then_memory_hits(self, registry, v100):
        schedule = registry.get("m", 1, v100)
        assert registry.stats.searches == 1
        again = registry.get("m", 1, v100)
        assert again is schedule
        assert registry.stats.memory_hits == 1
        assert registry.stats.searches == 1

    def test_compiled_schedule_is_persisted_and_reloaded(self, registry, tmp_path, v100):
        schedule = registry.get("m", 2, v100)
        path = registry.path_for(registry.key("m", 2, v100))
        assert path.exists()

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        reloaded = fresh.get("m", 2, v100)
        assert fresh.stats.searches == 0
        assert fresh.stats.disk_hits == 1
        assert reloaded == schedule

    def test_distinct_keys_get_distinct_entries(self, registry, v100, k80):
        registry.get("m", 1, v100)
        registry.get("m", 2, v100)
        registry.get("m", 1, k80)
        assert registry.stats.searches == 3
        assert registry.cached_batch_sizes("m", v100) == [1, 2]
        assert registry.cached_batch_sizes("m", k80) == [1]

    def test_in_memory_registry_never_touches_disk(self, v100):
        registry = ScheduleRegistry(root=None, graph_builder=chain_builder)
        registry.get("m", 1, v100)
        assert registry.path_for(registry.key("m", 1, v100)) is None
        assert registry.stats.searches == 1

    def test_warmup_then_zero_searches(self, registry, tmp_path, v100):
        registry.warmup("m", [1, 2, 4], v100)
        assert registry.stats.searches == 3

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.warmup("m", [1, 2, 4], v100)
        assert fresh.stats.searches == 0
        assert fresh.stats.disk_hits == 3


class TestPutAndEnumeration:
    def test_put_and_contains(self, registry, v100):
        graph = chain_builder("m", 1)
        schedule = Schedule(
            graph_name=graph.name, origin="handmade",
            stages=[Stage(operators=(name,)) for name in graph.schedulable_names()],
        )
        registry.put("m", 1, v100, schedule)
        assert registry.contains("m", 1, v100)
        assert registry.get("m", 1, v100) == schedule
        assert registry.stats.searches == 0

    def test_keys_merges_memory_and_disk(self, registry, tmp_path, v100):
        registry.get("alpha", 1, v100)
        registry.get("beta", 2, v100)
        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        assert fresh.keys() == [
            registry.key("alpha", 1, v100),
            registry.key("beta", 2, v100),
        ]

    def test_key_round_trips_through_filename(self):
        key = RegistryKey("m", 32, "rtx2080ti", "ios-merge", "0123456789abcdef")
        parsed = RegistryKey.from_path("m", Path(key.filename()))
        assert parsed == key

    def test_legacy_filename_round_trips_with_empty_fingerprint(self):
        legacy = RegistryKey("m", 4, "v100", "ios-both")
        assert legacy.filename() == "v100__ios-both__bs4.json"
        parsed = RegistryKey.from_path("m", Path(legacy.filename()))
        assert parsed == legacy
        assert parsed.fingerprint == ""

    def test_key_embeds_the_served_graph_fingerprint(self, registry, v100):
        from repro.ir import graph_fingerprint

        key = registry.key("m", 1, v100)
        assert key.fingerprint == graph_fingerprint(registry.graph_for("m", 1))
        assert key.fingerprint in registry.path_for(key).name


class TestFailureModes:
    def test_corrupted_entry_is_dropped_and_recompiled(self, registry, tmp_path, v100):
        registry.get("m", 1, v100)
        path = registry.path_for(registry.key("m", 1, v100))
        path.write_text("{not json")

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.get("m", 1, v100)
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.searches == 1
        # The rewritten entry must be a valid full artifact again.
        from repro.engine import CompiledModel

        assert CompiledModel.load(path).schedule.graph_name == "chain"

    def test_wrong_shape_json_is_dropped_and_recompiled(self, registry, tmp_path, v100):
        # Valid JSON of the wrong shape (here a list) must be treated exactly
        # like a truncated file, not crash the lookup.
        registry.get("m", 1, v100)
        path = registry.path_for(registry.key("m", 1, v100))
        path.write_text("[1, 2, 3]")

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.get("m", 1, v100)
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.searches == 1

    def test_entry_for_wrong_graph_raises(self, registry, tmp_path, v100):
        key = registry.key("m", 1, v100)
        path = registry.path_for(key)
        Schedule(graph_name="other_graph", stages=[Stage(operators=("x",))]).save(path)
        with pytest.raises(RegistryError):
            registry.get("m", 1, v100)

    def test_legacy_entry_is_a_miss_with_a_warning(self, registry, tmp_path, v100):
        # An entry persisted before fingerprints may describe a different
        # graph: it must be recompiled, not silently reused.
        compiled = registry.get("m", 1, v100)
        key = registry.key("m", 1, v100)
        legacy_path = tmp_path / "m" / RegistryKey("m", 1, "v100", "ios-both").filename()
        registry.path_for(key).rename(legacy_path)

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        with pytest.warns(UserWarning, match="legacy schedule entry"):
            reloaded = fresh.get("m", 1, v100)
        assert fresh.stats.searches == 1
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.legacy_entries == 1
        assert reloaded == compiled  # same graph => same recompiled schedule
        # The legacy file stays on disk untouched; the new entry sits beside it.
        assert legacy_path.exists()
        assert fresh.path_for(key).exists()

    def test_legacy_warning_fires_once_across_instances(self, registry, tmp_path, v100):
        # A fleet builds one registry per worker over the same root: the
        # stale-file warning must fire once per process, not once per
        # registry instance probing the same file.
        registry.get("m", 1, v100)
        key = registry.key("m", 1, v100)
        legacy_path = tmp_path / "m" / RegistryKey("m", 1, "v100", "ios-both").filename()
        registry.path_for(key).rename(legacy_path)

        first = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        with pytest.warns(UserWarning, match="legacy schedule entry"):
            first.get("m", 1, v100)
        # Remove the fresh entry the first instance persisted so the second
        # instance takes the same legacy-probing path.
        first.path_for(key).unlink()

        second = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            second.get("m", 1, v100)
        # The probe still counts the stale file even though it stays quiet.
        assert second.stats.legacy_entries == 1

    def test_legacy_warning_fires_once_per_file(self, registry, tmp_path, v100):
        registry.get("m", 1, v100)
        key = registry.key("m", 1, v100)
        legacy_path = tmp_path / "m" / RegistryKey("m", 1, "v100", "ios-both").filename()
        registry.path_for(key).rename(legacy_path)

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        with pytest.warns(UserWarning):
            fresh.get("m", 1, v100)
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            # Entry now resolves from memory/disk; no further warning.
            fresh.get("m", 1, v100)

    def test_changed_graph_misses_instead_of_reusing_stale_schedule(
            self, registry, tmp_path, v100):
        registry.get("m", 1, v100)
        # The model definition "changes": same name, different structure.
        longer = ScheduleRegistry(
            root=tmp_path,
            graph_builder=lambda model, batch_size: chain_graph(
                length=5, batch_size=batch_size),
        )
        schedule = longer.get("m", 1, v100)
        assert longer.stats.searches == 1  # old entry must not satisfy this
        assert longer.stats.disk_hits == 0
        assert len(schedule.operators()) == len(
            longer.graph_for("m", 1).schedulable_names())

    def test_variant_is_part_of_the_key(self, tmp_path, v100):
        both = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder, variant="ios-both")
        merge = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder, variant="ios-merge")
        both.get("m", 1, v100)
        merge.get("m", 1, v100)
        assert merge.stats.searches == 1  # no cross-variant reuse
        assert both.path_for(both.key("m", 1, v100)) != merge.path_for(merge.key("m", 1, v100))


class TestCompiledArtifacts:
    def test_persisted_entry_is_a_full_artifact(self, registry, v100):
        from repro.engine import CompiledModel

        registry.get("m", 1, v100)
        path = registry.path_for(registry.key("m", 1, v100))
        compiled = CompiledModel.load(path)
        assert compiled.schedule.graph_name == "chain"
        assert compiled.plan.num_stages() == len(compiled.schedule)
        assert compiled.fingerprint == registry.key("m", 1, v100).fingerprint
        assert compiled.latency_ms() > 0

    def test_warm_start_performs_zero_searches_even_without_a_scheduler(
            self, registry, tmp_path, v100):
        # The artifact alone must be enough: a registry whose scheduler
        # factory explodes can still serve every warm entry.
        registry.warmup("m", [1, 2], v100)

        def exploding_factory(device, profile, variant):
            raise AssertionError("warm start must not construct a scheduler")

        warm = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder,
                                scheduler_factory=exploding_factory)
        compiled = warm.get_compiled("m", 1, v100)
        warm.get_compiled("m", 2, v100)
        assert warm.stats.searches == 0
        assert warm.stats.disk_hits == 2
        assert compiled.schedule == registry.get("m", 1, v100)

    def test_get_compiled_and_get_agree(self, registry, v100):
        compiled = registry.get_compiled("m", 2, v100)
        assert registry.get("m", 2, v100) is compiled.schedule
        assert registry.stats.memory_hits == 1

    def test_legacy_schedule_document_still_loads(self, registry, tmp_path, v100):
        # Files written before the artifact format (bare Schedule.to_dict())
        # must load as a disk hit, lowered against today's served graph.
        compiled = registry.get_compiled("m", 1, v100)
        path = registry.path_for(registry.key("m", 1, v100))
        compiled.schedule.save(path)  # overwrite with the pre-engine layout

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        reloaded = fresh.get_compiled("m", 1, v100)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.searches == 0
        assert reloaded.schedule == compiled.schedule
        assert reloaded.plan.num_stages() == compiled.plan.num_stages()

    def test_legacy_schedule_with_stale_operator_names_is_dropped(
            self, registry, tmp_path, v100):
        # Right graph name, wrong operators (e.g. nodes renamed behind the
        # rename-invariant fingerprint): must recompile, not crash the lookup.
        registry.get("m", 1, v100)
        path = registry.path_for(registry.key("m", 1, v100))
        Schedule(graph_name="chain",
                 stages=[Stage(operators=("no_such_op",))]).save(path)

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.get("m", 1, v100)
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.searches == 1

    def test_newer_artifact_version_misses_without_deleting(
            self, registry, tmp_path, v100):
        # A mixed-version or rolled-back deployment sharing a registry dir
        # must never destroy the other version's entries on sight.
        import json

        registry.get("m", 1, v100)
        key = registry.key("m", 1, v100)
        path = registry.path_for(key)
        data = json.loads(path.read_text())
        data["format_version"] = 99
        path.write_text(json.dumps(data))

        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        # The load itself must miss but leave the foreign-version file alone
        # (unlike a corrupt entry, which is unlinked on sight).
        assert fresh._load(fresh.key("m", 1, v100), v100) is None
        assert fresh.stats.corrupt_entries == 0
        assert json.loads(path.read_text())["format_version"] == 99

        # A full lookup then recompiles (one search) and re-persists.
        fresh.get("m", 1, v100)
        assert fresh.stats.searches == 1
        assert json.loads(path.read_text())["format_version"] == 1

    def test_variant_normalization_in_registry_key(self, tmp_path, v100):
        drifted = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder,
                                   variant="IOS_Both")
        assert drifted.variant == "ios-both"
        canonical = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        drifted.get("m", 1, v100)
        canonical.get("m", 1, v100)
        assert canonical.stats.searches == 0  # same key, warm from disk


class TestPassOptimizedEntries:
    def rebuildable(self, model: str, batch_size: int):
        # A graph with fusion opportunities: unfused conv + relu chain.
        from repro.ir import GraphBuilder, TensorShape

        b = GraphBuilder("fusable", TensorShape(batch_size, 3, 8, 8))
        x = b.conv2d("conv", b.input_name, out_channels=4, kernel=3, activation=None)
        b.relu("act", x)
        return b.build()

    def test_optimized_and_raw_schedules_never_collide(self, tmp_path, v100):
        raw = ScheduleRegistry(root=tmp_path, graph_builder=self.rebuildable)
        opt = ScheduleRegistry(root=tmp_path, graph_builder=self.rebuildable, passes=True)
        raw.get("m", 1, v100)
        opt.get("m", 1, v100)
        assert opt.stats.searches == 1  # the raw entry must not be reused
        assert raw.key("m", 1, v100).fingerprint != opt.key("m", 1, v100).fingerprint
        # The optimized graph fused conv+relu into one schedulable operator.
        assert len(opt.graph_for("m", 1).schedulable_names()) == 1
        assert len(raw.graph_for("m", 1).schedulable_names()) == 2

    def test_optimized_entries_are_warm_across_registries(self, tmp_path, v100):
        first = ScheduleRegistry(root=tmp_path, graph_builder=self.rebuildable, passes=True)
        first.get("m", 1, v100)
        second = ScheduleRegistry(root=tmp_path, graph_builder=self.rebuildable, passes=True)
        second.get("m", 1, v100)
        assert second.stats.searches == 0
        assert second.stats.disk_hits == 1


class TestPathLikeModelNames:
    """Model strings may be file paths (the default graph_builder is
    ``repro.frontend.load``); the disk layout must stay one directory deep."""

    def test_model_dirname_sanitizes_paths(self):
        from repro.serve import model_dirname

        assert model_dirname("squeezenet") == "squeezenet"
        assert model_dirname("examples/transformer_block.json") == \
            "examples_transformer_block.json"
        assert model_dirname("..\\..\\evil.json") == "evil.json"
        assert model_dirname("///") == "model"

    def test_path_model_persists_under_a_sanitized_directory(self, tmp_path, v100):
        registry = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        model = "some/dir/model.json"
        registry.get(model, 1, v100)
        path = registry.path_for(registry.key(model, 1, v100))
        assert path.parent == tmp_path / "some_dir_model.json"
        assert path.exists()
        assert registry.cached_batch_sizes(model, v100) == [1]

    def test_path_model_entries_are_warm_across_registries(self, tmp_path, v100):
        model = "some/dir/model.json"
        ScheduleRegistry(root=tmp_path, graph_builder=chain_builder).get(model, 1, v100)
        fresh = ScheduleRegistry(root=tmp_path, graph_builder=chain_builder)
        fresh.get(model, 1, v100)
        assert fresh.stats.searches == 0
        assert fresh.stats.disk_hits == 1

    def test_example_transformer_serves_from_its_file(self, tmp_path, v100):
        examples = Path(__file__).resolve().parents[2] / "examples"
        model = str(examples / "transformer_block.json")
        registry = ScheduleRegistry(root=tmp_path, passes=True)
        schedule = registry.get(model, 4, v100)
        assert schedule.num_stages() > 0
        assert registry.cached_batch_sizes(model, v100) == [4]
