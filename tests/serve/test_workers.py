"""Tests for the simulated worker pool."""

from __future__ import annotations

import pytest

from repro.core import IOSScheduler, SimulatedCostModel
from repro.models import chain_graph
from repro.serve import WorkerPool


@pytest.fixture
def graph():
    return chain_graph(length=3, batch_size=2)


@pytest.fixture
def schedule(graph, v100):
    return IOSScheduler(SimulatedCostModel(v100)).optimize_graph(graph).schedule


class TestWorkerPool:
    def test_requires_at_least_one_device(self):
        with pytest.raises(ValueError):
            WorkerPool([])

    def test_dispatch_advances_the_worker_horizon(self, graph, schedule, v100):
        pool = WorkerPool([v100])
        result = pool.dispatch(graph, schedule, pool.workers[0], ready_ms=10.0)
        assert result.start_ms == 10.0
        assert result.end_ms == pytest.approx(10.0 + result.execution_ms)
        assert result.execution_ms > 0
        assert pool.workers[0].busy_until_ms == result.end_ms

    def test_busy_worker_queues_the_batch(self, graph, schedule, v100):
        pool = WorkerPool([v100])
        first = pool.dispatch(graph, schedule, pool.workers[0], ready_ms=0.0)
        second = pool.dispatch(graph, schedule, pool.workers[0], ready_ms=0.0)
        assert second.start_ms == first.end_ms
        assert second.wait_for_worker_ms == pytest.approx(first.end_ms)

    def test_next_worker_prefers_the_idle_one(self, graph, schedule, v100):
        pool = WorkerPool([v100, v100])
        worker = pool.next_worker(0.0)
        pool.dispatch(graph, schedule, worker, ready_ms=0.0)
        other = pool.next_worker(0.0)
        assert other.worker_id != worker.worker_id

    def test_plan_latency_is_cached_and_deterministic(self, graph, schedule, v100):
        pool = WorkerPool([v100])
        worker = pool.workers[0]
        first = pool.plan_latency_ms(graph, schedule, worker)
        assert pool.plan_latency_ms(graph, schedule, worker) == first
        assert len(pool._plan_cache) == 1
        assert len(pool._result_cache) == 1

    def test_heterogeneous_pool_runs_faster_on_the_faster_device(
        self, graph, schedule, v100, k80
    ):
        pool = WorkerPool([v100, k80])
        fast = pool.plan_latency_ms(graph, schedule, pool.workers[0])
        slow = pool.plan_latency_ms(graph, schedule, pool.workers[1])
        assert fast < slow

    def test_summary_accounts_for_all_dispatches(self, graph, schedule, v100):
        pool = WorkerPool([v100, v100])
        for _ in range(4):
            worker = pool.next_worker(0.0)
            pool.dispatch(graph, schedule, worker, ready_ms=0.0)
        summary = pool.summary()
        assert sum(row["batches"] for row in summary) == 4
        assert sum(row["samples"] for row in summary) == 4 * graph.batch_size
        assert all(0.0 <= row["utilization"] <= 1.0 for row in summary)
