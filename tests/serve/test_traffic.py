"""Tests for the synthetic traffic generators."""

from __future__ import annotations

import random

import pytest

from repro.serve import (
    TrafficConfig,
    TrafficGenerator,
    bursty_arrival_bursts,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)


class TestArrivalProcesses:
    def test_poisson_is_sorted_and_deterministic(self):
        a1 = poisson_arrivals(500, rate_rps=100.0, rng=random.Random(7))
        a2 = poisson_arrivals(500, rate_rps=100.0, rng=random.Random(7))
        assert a1 == a2
        assert a1 == sorted(a1)
        assert len(a1) == 500

    def test_poisson_rate_is_approximately_respected(self):
        arrivals = poisson_arrivals(2000, rate_rps=200.0, rng=random.Random(0))
        # 2000 arrivals at 200/s should span about 10 s.
        assert 8_000 < arrivals[-1] < 12_000

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(10, rate_rps=0.0, rng=random.Random(0))

    def test_bursty_produces_bursts(self):
        arrivals = bursty_arrivals(
            60, burst_size=10, burst_gap_ms=100.0, rng=random.Random(1)
        )
        assert len(arrivals) == 60
        assert arrivals == sorted(arrivals)
        # Gaps within a burst are sub-millisecond; gaps between bursts are
        # tens of ms — so exactly 5 large gaps for 6 bursts.
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        large = [gap for gap in gaps if gap > 10.0]
        assert len(large) == 5

    def test_bursty_stays_monotonic_when_bursts_outlast_the_gap(self):
        # 32 requests ~0.2ms apart span ~6ms, far longer than a 5ms gap that
        # can jitter down to 2.5ms — the next burst must still start after
        # the previous one ends.
        arrivals = bursty_arrivals(
            200, burst_size=32, burst_gap_ms=5.0, rng=random.Random(3)
        )
        assert arrivals == sorted(arrivals)

    def test_uniform_spacing(self):
        arrivals = uniform_arrivals(5, rate_rps=1000.0, rng=random.Random(0))
        assert arrivals == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_burst_ids_label_whole_bursts(self):
        pairs = bursty_arrival_bursts(
            60, burst_size=10, burst_gap_ms=100.0, rng=random.Random(1)
        )
        ids = [burst_id for _, burst_id in pairs]
        assert ids == sorted(ids)
        assert set(ids) == set(range(6))
        assert all(ids.count(burst_id) == 10 for burst_id in set(ids))

    def test_burst_ids_flip_exactly_at_the_large_gaps(self):
        pairs = bursty_arrival_bursts(
            60, burst_size=10, burst_gap_ms=100.0, rng=random.Random(1)
        )
        for (a_time, a_id), (b_time, b_id) in zip(pairs, pairs[1:]):
            if b_id != a_id:
                assert b_time - a_time > 10.0
            else:
                assert b_time - a_time < 10.0

    def test_bursty_arrivals_is_the_times_view_of_the_pairs(self):
        kwargs = dict(num_requests=40, burst_size=8, burst_gap_ms=20.0)
        flat = bursty_arrivals(rng=random.Random(9), **kwargs)
        pairs = bursty_arrival_bursts(rng=random.Random(9), **kwargs)
        assert flat == [arrival for arrival, _ in pairs]


class TestTrafficGenerator:
    def test_generates_requested_count_in_order(self):
        config = TrafficConfig(model="squeezenet", num_requests=128, seed=3)
        requests = TrafficGenerator(config).generate()
        assert len(requests) == 128
        assert [r.request_id for r in requests] == list(range(128))
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(r.model == "squeezenet" for r in requests)

    def test_sample_sizes_come_from_the_configured_mix(self):
        config = TrafficConfig(num_requests=300, sample_sizes=(1, 4),
                               sample_weights=(0.5, 0.5), seed=11)
        requests = TrafficGenerator(config).generate()
        sizes = {r.num_samples for r in requests}
        assert sizes == {1, 4}

    def test_same_seed_same_workload(self):
        config = TrafficConfig(num_requests=64, pattern="bursty", seed=5)
        assert TrafficGenerator(config).generate() == TrafficGenerator(config).generate()

    def test_different_seed_different_workload(self):
        base = TrafficConfig(num_requests=64, seed=1)
        other = TrafficConfig(num_requests=64, seed=2)
        assert TrafficGenerator(base).generate() != TrafficGenerator(other).generate()

    def test_capped_to_drops_oversized_sizes(self):
        config = TrafficConfig(num_requests=50)
        capped = config.capped_to(2)
        assert capped.sample_sizes == (1, 2)
        assert len(capped.sample_weights) == 2
        assert all(r.num_samples <= 2 for r in TrafficGenerator(capped).generate())

    def test_capped_to_is_identity_when_everything_fits(self):
        config = TrafficConfig(num_requests=50)
        assert config.capped_to(4) is config

    def test_capped_to_rejects_impossible_cap(self):
        config = TrafficConfig(num_requests=50, sample_sizes=(4, 8),
                               sample_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            config.capped_to(2)

    def test_bursty_requests_carry_their_burst_id(self):
        config = TrafficConfig(model="toy", pattern="bursty", num_requests=50,
                               burst_size=10, burst_gap_ms=100.0, seed=1)
        requests = TrafficGenerator(config).generate()
        ids = [r.burst_id for r in requests]
        assert None not in ids
        assert set(ids) == set(range(5))

    def test_non_bursty_requests_have_no_burst_id(self):
        for pattern in ("poisson", "uniform"):
            config = TrafficConfig(model="toy", pattern=pattern, num_requests=20)
            assert all(
                r.burst_id is None for r in TrafficGenerator(config).generate()
            )

    def test_slo_attaches_the_deadline_budget(self):
        config = TrafficConfig(model="toy", num_requests=20, slo_ms=30.0)
        requests = TrafficGenerator(config).generate()
        assert all(r.deadline_ms == 30.0 for r in requests)
        assert all(
            r.absolute_deadline_ms == r.arrival_ms + 30.0 for r in requests
        )

    def test_with_slo_copies_the_config(self):
        base = TrafficConfig(model="toy", num_requests=20)
        assert base.slo_ms is None
        assert base.with_slo(10.0).slo_ms == 10.0

    def test_priority_mix_draws_all_classes(self):
        config = TrafficConfig(model="toy", num_requests=200,
                               priorities=(0, 1, 2),
                               priority_weights=(0.6, 0.3, 0.1), seed=3)
        priorities = {r.priority for r in TrafficGenerator(config).generate()}
        assert priorities == {0, 1, 2}

    def test_single_priority_class_draws_no_randomness(self):
        # Adding the (default) priority knobs must not perturb the arrival
        # and sample-size streams of pre-SLO configs.
        base = TrafficConfig(model="toy", num_requests=50, seed=7)
        requests = TrafficGenerator(base).generate()
        assert all(r.priority == 0 for r in requests)

    @pytest.mark.parametrize("kwargs", [
        {"pattern": "zipf"},
        {"num_requests": 0},
        {"sample_sizes": (1, 2), "sample_weights": (1.0,)},
        {"sample_sizes": ()},
        {"slo_ms": -1.0},
        {"priorities": (0, 1), "priority_weights": (1.0,)},
        {"priorities": ()},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrafficConfig(**kwargs)
