"""Tests for the discrete-event serving loop."""

from __future__ import annotations

import pytest

from repro.models import chain_graph
from repro.serve import (
    BatchPolicy,
    DynamicBatcher,
    InferenceRequest,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
)


def toy_registry(root=None):
    return ScheduleRegistry(
        root=root, graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
    )


def toy_service(root=None, **overrides) -> InferenceService:
    overrides.setdefault("model", "toy")
    overrides.setdefault("devices", ("v100",))
    overrides.setdefault("batch_sizes", (1, 2, 4))
    overrides.setdefault("policy", BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
    return InferenceService(ServingConfig(**overrides), registry=toy_registry(root))


def request(request_id, arrival_ms, num_samples=1, **kwargs):
    return InferenceRequest(request_id=request_id, model="toy",
                            arrival_ms=arrival_ms, num_samples=num_samples,
                            **kwargs)


class TestLoopMatchesOfflineBatcher:
    """With admit-all and no autoscaler, the loop IS the offline batcher."""

    def test_batch_close_times_match_the_dynamic_batcher(self):
        requests = [request(i, arrival_ms=i * 0.9, num_samples=1 + i % 2)
                    for i in range(30)]
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0)
        offline = DynamicBatcher(policy).form_batches(requests)

        service = toy_service(policy=policy)
        report = service.run(requests)

        offline_closes = [batch.formed_ms for batch in offline]
        loop_closes = sorted({record.batched_ms for record in report.records})
        assert loop_closes == sorted(set(offline_closes))
        assert report.num_requests == len(requests)

    def test_arrival_exactly_at_the_close_deadline_joins_the_batch(self):
        # The offline batcher only flushes when an arrival is strictly past
        # the deadline; the loop must apply the same tie-break.
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0)
        requests = [request(0, 0.0), request(1, 2.0)]
        service = toy_service(policy=policy)
        report = service.run(requests)
        assert report.num_batches == 1
        assert all(record.batched_ms == 2.0 for record in report.records)

    def test_stale_timeout_does_not_close_the_next_batch(self):
        # Batch A (opened at 0, wait 2) closes full at t=1; its timeout event
        # at t=2 is stale and must not flush batch B (opened at 1.5).
        policy = BatchPolicy(max_batch_size=2, max_wait_ms=2.0)
        requests = [request(0, 0.0), request(1, 1.0), request(2, 1.5)]
        service = toy_service(policy=policy)
        report = service.run(requests)
        by_id = {r.request.request_id: r for r in report.records}
        assert by_id[0].batched_ms == 1.0  # closed full with request 1
        assert by_id[1].batched_ms == 1.0
        assert by_id[2].batched_ms == pytest.approx(3.5)  # its own deadline

    def test_drain_still_stamps_the_close_deadline(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=5.0)
        report = toy_service(policy=policy).run([request(0, 1.0)])
        assert report.records[0].batched_ms == pytest.approx(6.0)


class TestLoopEdgeCases:
    def test_zero_duration_batches_complete_instantly(self):
        service = toy_service()
        service.pool.plan_latency_ms = (
            lambda graph, schedule, worker, plan=None: 0.0
        )
        requests = [request(i, arrival_ms=float(i)) for i in range(10)]
        report = service.run(requests)
        assert report.num_requests == 10
        for record in report.records:
            assert record.completion_ms == record.dispatch_ms
            assert record.service_time_ms == 0.0
        # The virtual clock still advanced through the batching waits.
        assert report.makespan_ms > 0

    def test_all_requests_past_deadline_at_arrival_yields_an_all_rejected_report(self):
        service = toy_service(admission="deadline")
        requests = [request(i, arrival_ms=float(i), deadline_ms=0.0)
                    for i in range(8)]
        report = service.run(requests)
        assert report.num_requests == 0
        assert report.num_batches == 0
        assert report.latency.p99_ms == 0.0
        slo = report.slo_summary
        assert slo.offered == 8
        assert slo.rejected == 8
        assert slo.attainment_rate == 0.0
        assert slo.rejection_reasons == {"predicted-deadline-miss": 8}

    def test_empty_request_list_still_rejected(self):
        with pytest.raises(ValueError):
            toy_service().run([])


class TestLoopDeterminism:
    def _report(self, seed=3):
        traffic = TrafficConfig(
            model="toy", pattern="bursty", num_requests=120, burst_size=24,
            burst_gap_ms=6.0, slo_ms=5.0, priorities=(0, 1),
            priority_weights=(0.8, 0.2), seed=seed,
        ).capped_to(4)
        service = toy_service(
            devices=("v100",), admission="deadline", autoscale="1:3",
        )
        return service.run(TrafficGenerator(traffic).generate())

    def test_same_seed_gives_the_identical_report_twice(self):
        first, second = self._report(), self._report()
        assert first.num_requests == second.num_requests
        assert first.records == second.records
        assert first.rejected == second.rejected
        assert first.scale_events == second.scale_events
        assert first.slo_summary == second.slo_summary
        assert first.latency == second.latency
        assert first.makespan_ms == second.makespan_ms

    def test_different_seed_gives_a_different_report(self):
        assert self._report(seed=3).records != self._report(seed=4).records


class TestReportContract:
    """The pre-SLO report surface is unchanged for old invocations."""

    def test_plain_run_keeps_the_legacy_fields_and_gains_slo_defaults(self):
        service = toy_service()
        report = service.run([request(i, arrival_ms=i * 0.5) for i in range(20)])
        assert report.num_requests == 20
        assert report.router == "earliest-finish"
        assert report.admission == "admit-all"
        assert report.rejected == []
        assert report.scale_events == []
        # admit-all on deadline-free traffic is not an SLO run.
        assert report.slo_summary is None

    def test_deadline_traffic_alone_triggers_the_slo_summary(self):
        service = toy_service()  # admit-all, fixed pool
        report = service.run(
            [request(i, arrival_ms=i * 0.5, deadline_ms=100.0) for i in range(10)]
        )
        assert report.slo_summary is not None
        assert report.slo_summary.attainment_rate == 1.0

    def test_describe_mentions_slo_and_autoscale_sections_when_present(self):
        traffic = TrafficConfig(
            model="toy", pattern="bursty", num_requests=60, burst_size=20,
            burst_gap_ms=5.0, slo_ms=2.0, seed=1,
        ).capped_to(4)
        service = toy_service(admission="deadline", autoscale="1:2")
        text = service.run(TrafficGenerator(traffic).generate()).describe()
        assert "admission : deadline" in text
        assert "slo" in text
