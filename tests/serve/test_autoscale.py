"""Tests for the autoscaler and elastic worker pools."""

from __future__ import annotations

import pytest

from repro.models import chain_graph
from repro.serve import (
    AutoscaleConfig,
    BatchPolicy,
    FleetSpec,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
    WorkerPool,
)
from repro.hardware import get_device


def toy_service(**overrides) -> InferenceService:
    overrides.setdefault("model", "toy")
    overrides.setdefault("devices", ("v100",))
    overrides.setdefault("batch_sizes", (1, 2, 4))
    overrides.setdefault("policy", BatchPolicy(max_batch_size=4, max_wait_ms=1.0))
    registry = ScheduleRegistry(
        graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
    )
    return InferenceService(ServingConfig(**overrides), registry=registry)


def bursty_traffic(num_requests=120, burst_size=30, burst_gap_ms=8.0, seed=2):
    return TrafficGenerator(
        TrafficConfig(
            model="toy", pattern="bursty", num_requests=num_requests,
            burst_size=burst_size, burst_gap_ms=burst_gap_ms, seed=seed,
        ).capped_to(4)
    ).generate()


class TestAutoscaleConfig:
    def test_parse_min_max(self):
        config = AutoscaleConfig.parse("2:6")
        assert (config.min_workers, config.max_workers) == (2, 6)

    def test_parse_with_overrides(self):
        config = AutoscaleConfig.parse("1:3", interval_ms=2.0, cooldown_ms=4.0)
        assert config.interval_ms == 2.0
        assert config.cooldown_ms == 4.0

    @pytest.mark.parametrize("bad", ["", "3", "1:2:3", "a:b", "4:1"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            AutoscaleConfig.parse(bad)

    @pytest.mark.parametrize("kwargs", [
        {"min_workers": 0},
        {"min_workers": 3, "max_workers": 2},
        {"interval_ms": 0.0},
        {"scale_up_backlog_ms": -1.0},
        {"cooldown_ms": -1.0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscaleConfig(**kwargs)

    def test_of_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            AutoscaleConfig.of(7)


class TestElasticPool:
    def test_add_worker_extends_the_pool_with_fresh_ids(self, v100):
        pool = WorkerPool([v100])
        worker = pool.add_worker(v100, now_ms=5.0)
        assert worker.worker_id == 1
        assert worker.spawned_ms == 5.0
        assert len(pool) == 2

    def test_remove_worker_retires_but_keeps_accounting(self, v100):
        pool = WorkerPool([v100, v100])
        victim = pool.workers[1]
        pool.remove_worker(victim, now_ms=3.0)
        assert len(pool.workers) == 1
        assert victim.retired_ms == 3.0
        assert [row["worker"] for row in pool.summary()] == [0, 1]

    def test_cannot_remove_a_busy_worker(self, v100):
        pool = WorkerPool([v100, v100])
        pool.workers[1].busy_until_ms = 10.0
        with pytest.raises(ValueError):
            pool.remove_worker(pool.workers[1], now_ms=5.0)

    def test_cannot_remove_the_last_worker(self, v100):
        pool = WorkerPool([v100])
        with pytest.raises(ValueError):
            pool.remove_worker(pool.workers[0], now_ms=0.0)

    def test_worker_ids_are_never_reused(self, v100):
        pool = WorkerPool([v100, v100])
        pool.remove_worker(pool.workers[1], now_ms=0.0)
        replacement = pool.add_worker(v100, now_ms=1.0)
        assert replacement.worker_id == 2

    def test_per_worker_utilization_uses_the_lifetime_too(self, v100):
        pool = WorkerPool([v100])
        late = pool.add_worker(v100, now_ms=60.0)
        late.busy_ms = 30.0
        late.busy_until_ms = 100.0
        pool.workers[0].busy_until_ms = 100.0
        rows = {row["worker"]: row for row in pool.summary()}
        # 30ms busy over a 40ms lifetime, not over the 100ms makespan.
        assert rows[1]["utilization"] == pytest.approx(30.0 / 40.0)

    def test_group_utilization_uses_worker_lifetimes(self, v100):
        # A worker that existed for only a slice of the run contributes only
        # that slice of available time — churn must not dilute utilisation.
        pool = WorkerPool([v100])
        pool.workers[0].busy_ms = 50.0
        pool.workers[0].busy_until_ms = 100.0
        late = pool.add_worker(v100, now_ms=60.0)
        late.busy_ms = 20.0
        late.busy_until_ms = 100.0
        row = pool.group_summary()[0]
        assert row["workers"] == 2
        # available = 100 (full run) + 40 (spawned at 60), not 2 × 100.
        assert row["utilization"] == pytest.approx(70.0 / 140.0)


class TestAutoscalingService:
    def test_scales_up_under_burst_and_records_events(self):
        # The toy chain executes in ~0.1ms, so the watermarks sit at the same
        # scale: any sustained backlog trips them.
        service = toy_service(
            autoscale=AutoscaleConfig(min_workers=1, max_workers=3,
                                      interval_ms=0.2, scale_up_backlog_ms=0.02),
        )
        report = service.run(bursty_traffic())
        assert len(report.scale_events) > 0
        assert any(event.action == "up" for event in report.scale_events)
        peak = max(event.num_workers for event in report.scale_events)
        assert peak > 1

    def test_never_exceeds_the_max_bound(self):
        service = toy_service(
            autoscale=AutoscaleConfig(min_workers=1, max_workers=2,
                                      interval_ms=0.2, scale_up_backlog_ms=0.02),
        )
        report = service.run(bursty_traffic())
        assert all(event.num_workers <= 2 for event in report.scale_events)
        assert len(service.pool.workers) <= 2

    def test_never_shrinks_below_the_min_bound(self):
        service = toy_service(
            devices=("v100", "v100"),
            autoscale=AutoscaleConfig(min_workers=2, max_workers=3,
                                      interval_ms=1.0, scale_up_backlog_ms=0.5),
        )
        # Sparse traffic: the pool idles between arrivals, inviting downs.
        requests = bursty_traffic(num_requests=20, burst_size=2, burst_gap_ms=30.0)
        report = service.run(requests)
        assert all(event.num_workers >= 2 for event in report.scale_events)
        assert len(service.pool.workers) >= 2

    def test_pinned_at_bounds_when_min_equals_max(self):
        service = toy_service(
            autoscale=AutoscaleConfig(min_workers=1, max_workers=1,
                                      interval_ms=0.2, scale_up_backlog_ms=0.02),
        )
        report = service.run(bursty_traffic())
        assert report.scale_events == []
        assert len(service.pool.workers) == 1

    def test_scale_down_returns_after_the_burst(self):
        service = toy_service(
            autoscale=AutoscaleConfig(min_workers=1, max_workers=3,
                                      interval_ms=0.2, scale_up_backlog_ms=0.02),
        )
        # One heavy burst, then a long quiet tail of stragglers.
        burst = bursty_traffic(num_requests=60, burst_size=60, burst_gap_ms=5.0)
        quiet = bursty_traffic(num_requests=6, burst_size=1, burst_gap_ms=50.0)
        offset = max(r.arrival_ms for r in burst) + 5.0
        import dataclasses
        tail = [
            dataclasses.replace(r, request_id=100 + i, arrival_ms=r.arrival_ms + offset)
            for i, r in enumerate(quiet)
        ]
        report = service.run(burst + tail)
        actions = [event.action for event in report.scale_events]
        assert "up" in actions and "down" in actions

    def test_autoscale_spec_string_accepted_by_config(self):
        config = ServingConfig(model="toy", autoscale="1:4")
        assert config.autoscale == AutoscaleConfig(min_workers=1, max_workers=4)

    @pytest.mark.parametrize("devices, bounds", [
        (("v100",) * 4, "1:3"),   # starts above max
        (("v100",), "2:4"),       # starts below min
    ])
    def test_declared_pool_must_start_within_the_bounds(self, devices, bounds):
        with pytest.raises(ValueError, match="autoscale bounds"):
            ServingConfig(model="toy", devices=devices, autoscale=bounds)

    def test_fixed_pool_by_default(self):
        service = toy_service()
        report = service.run(bursty_traffic())
        assert report.scale_events == []
        assert len(service.pool.workers) == 1


class TestElasticFleet:
    def test_fleet_bounds_enable_autoscaling(self):
        fleet = FleetSpec.parse("v100:2").bounded(1, 4)
        config = ServingConfig(model="toy", fleet=fleet)
        assert config.autoscale == AutoscaleConfig(min_workers=1, max_workers=4)
        assert fleet.is_elastic

    def test_fleet_without_bounds_stays_fixed(self):
        config = ServingConfig(model="toy", fleet="v100:2")
        assert config.autoscale is None

    def test_bounds_must_bracket_the_declared_size(self):
        with pytest.raises(ValueError):
            FleetSpec.parse("v100:2").bounded(3, 4)

    def test_bounds_come_in_pairs(self):
        with pytest.raises(ValueError):
            FleetSpec(groups=(("v100", 2),), min_workers=1)

    def test_autoscaler_spawns_the_primary_device(self):
        fleet = FleetSpec.parse("k80:1,v100:1").bounded(1, 3)
        service = toy_service(fleet=fleet)
        assert service.autoscaler.device == get_device("k80")

    def test_scale_down_preserves_the_declared_fleet_composition(self, k80, v100):
        # Scale-up can only recreate the spawn device, so scale-down must
        # retire spawned workers first and never strip the declared v100s
        # while a spawned k80 is available.
        from repro.serve import Autoscaler

        pool = WorkerPool([k80, v100, v100])
        spawned = pool.add_worker(k80, now_ms=5.0)

        class IdleState:
            now_ms = 10.0
            pending_samples = 0

        IdleState.pool = pool
        scaler = Autoscaler(
            AutoscaleConfig(min_workers=1, max_workers=4), device=k80
        )
        events = scaler.evaluate(IdleState())
        assert [event.worker_id for event in events] == [spawned.worker_id]
        assert sorted(w.device.name for w in pool.workers) == [
            "k80", "v100", "v100"
        ]

    def test_scale_up_revives_lost_declared_capacity_first(self, k80, v100):
        from repro.serve import Autoscaler

        pool = WorkerPool([k80, v100])
        scaler = Autoscaler(
            AutoscaleConfig(min_workers=1, max_workers=3), device=k80
        )

        class State:
            pool = None
            now_ms = 0.0
            pending_samples = 0

        State.pool = pool
        # Mild backlog: the snapshot check neither grows nor shrinks.
        for worker in pool.workers:
            worker.busy_until_ms = 5.0
        scaler.evaluate(State())  # snapshot the declared composition
        # The declared v100 idles away...
        State.now_ms = 10.0
        pool.remove_worker(pool.workers[1], now_ms=10.0)
        # ...then load returns: the first scale-up revives the v100, the
        # next one spawns the primary k80.
        State.now_ms = 20.0
        for worker in pool.workers:
            worker.busy_until_ms = 1e6
        first = scaler.evaluate(State())
        second = scaler.evaluate(State())
        assert [event.device for event in first + second] == ["v100", "k80"]
