"""Tests for heterogeneous fleets: FleetSpec, routers, mixed-device serving."""

from __future__ import annotations

import pytest

from repro.hardware import get_device
from repro.serve import (
    EarliestFinishRouter,
    FleetSpec,
    InferenceService,
    Router,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
    WorkerPool,
    get_router,
    list_routers,
    run_fleet_comparison,
)

MODEL = "squeezenet"
LADDER = (1, 2, 4)


def traffic(num_requests=120, rate_rps=2500.0, seed=7, **overrides):
    config = TrafficConfig(
        model=MODEL, num_requests=num_requests, rate_rps=rate_rps, seed=seed,
        **overrides,
    ).capped_to(max(LADDER))
    return TrafficGenerator(config).generate()


def fleet_config(fleet, **overrides):
    overrides.setdefault("batch_sizes", LADDER)
    return ServingConfig(model=MODEL, fleet=fleet, **overrides)


class TestFleetSpec:
    def test_parse_groups_counts_and_expansion(self):
        fleet = FleetSpec.parse("k80:2,v100:4")
        assert fleet.groups == (("k80", 2), ("v100", 4))
        assert fleet.num_workers == 6
        assert fleet.device_names() == ("k80", "k80", "v100", "v100", "v100", "v100")
        assert fleet.device_types() == ("k80", "v100")
        assert not fleet.is_homogeneous
        assert fleet.describe() == "k80:2,v100:4" == str(fleet)

    def test_parse_bare_device_name_means_one_worker(self):
        fleet = FleetSpec.parse("v100")
        assert fleet.groups == (("v100", 1),)
        assert fleet.is_homogeneous

    def test_parse_rejects_repeated_device_groups(self):
        # A repeated group is almost always a typo'd count; merging would
        # hide it.  The message quotes the whole offending spec.
        with pytest.raises(ValueError, match=r"duplicate device group"):
            FleetSpec.parse("v100:1,k80:2,v100:2")
        with pytest.raises(ValueError, match=r"v100:1,k80:2,v100:2"):
            FleetSpec.parse("v100:1,k80:2,v100:2")

    def test_parse_rejects_duplicates_through_aliases(self):
        with pytest.raises(ValueError, match="duplicate device group 'v100'"):
            FleetSpec.parse("v100:1,Tesla-V100:2")

    def test_parse_errors_quote_the_full_spec(self):
        with pytest.raises(ValueError, match=r"k80:2,v100:x"):
            FleetSpec.parse("k80:2,v100:x")
        with pytest.raises(KeyError, match=r"k80:1,tpu:4"):
            FleetSpec.parse("k80:1,tpu:4")

    def test_device_aliases_canonicalise(self):
        fleet = FleetSpec.parse("2080ti:2,Tesla-V100:1")
        assert fleet.device_types() == ("rtx2080ti", "v100")

    def test_homogeneous_constructor(self):
        fleet = FleetSpec.homogeneous("k80", 3)
        assert fleet.groups == (("k80", 3),)
        assert fleet.num_workers == 3

    def test_of_accepts_spec_string_and_mapping(self):
        fleet = FleetSpec.parse("k80:1,v100:2")
        assert FleetSpec.of(fleet) is fleet
        assert FleetSpec.of("k80:1,v100:2") == fleet
        assert FleetSpec.of({"k80": 1, "v100": 2}) == fleet
        with pytest.raises(TypeError):
            FleetSpec.of(3)

    @pytest.mark.parametrize("bad", ["", ",", "v100:", "v100:zero", "v100:0",
                                     "v100:-1", ":3"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FleetSpec.parse(bad)

    def test_unknown_device_lists_the_catalog(self):
        with pytest.raises(KeyError, match="available"):
            FleetSpec.parse("tpu:4")


class TestRouters:
    @pytest.fixture
    def pool(self, v100, k80):
        return WorkerPool([k80, v100])

    @staticmethod
    def no_estimate(worker):
        raise AssertionError("this router must not ask for latency estimates")

    def test_registry_lists_all_policies(self):
        assert list_routers() == sorted(
            ["earliest-finish", "earliest-start", "round-robin", "least-loaded"]
        )

    def test_get_router_normalises_spelling(self):
        assert get_router("EARLIEST_FINISH").name == "earliest-finish"
        router = EarliestFinishRouter()
        assert get_router(router) is router

    def test_get_router_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="registered routers"):
            get_router("random")

    def test_earliest_finish_prefers_the_faster_device_when_idle(self, pool):
        speed = {"k80": 5.0, "v100": 1.0}
        router = get_router("earliest-finish")
        picked = router.pick(pool.workers, 0.0, lambda w: speed[w.device.name])
        assert picked.device.name == "v100"

    def test_earliest_finish_falls_back_to_the_slow_device_under_queueing(self, pool):
        speed = {"k80": 5.0, "v100": 1.0}
        fast = next(w for w in pool.workers if w.device.name == "v100")
        fast.busy_until_ms = 100.0  # deep backlog on the fast worker
        router = get_router("earliest-finish")
        picked = router.pick(pool.workers, 0.0, lambda w: speed[w.device.name])
        assert picked.device.name == "k80"

    def test_earliest_start_ignores_device_speed(self, pool):
        # Both idle: the tie breaks by worker id, k80 first — and the router
        # must never consult the estimate.
        picked = get_router("earliest-start").pick(pool.workers, 0.0, self.no_estimate)
        assert picked.worker_id == 0

    def test_round_robin_cycles_without_estimates(self, pool):
        router = get_router("round-robin")
        order = [router.pick(pool.workers, 0.0, self.no_estimate).worker_id
                 for _ in range(4)]
        assert order == [0, 1, 0, 1]

    def test_least_loaded_balances_cumulative_busy_time(self, pool):
        pool.workers[0].busy_ms = 10.0
        picked = get_router("least-loaded").pick(pool.workers, 0.0, self.no_estimate)
        assert picked.worker_id == 1


class TestServingConfigFleet:
    def test_fleet_rewrites_devices_to_the_expanded_pool(self):
        config = fleet_config("k80:1,v100:2")
        assert config.devices == ("k80", "v100", "v100")
        assert isinstance(config.fleet, FleetSpec)

    def test_fleet_accepts_mapping_and_spec_objects(self):
        config = fleet_config({"v100": 2})
        assert config.devices == ("v100", "v100")
        assert fleet_config(FleetSpec.homogeneous("v100", 2)).devices == config.devices

    def test_router_name_is_validated_at_config_time(self):
        with pytest.raises(ValueError, match="registered routers"):
            fleet_config("v100:1", router="fastest")

    def test_router_spelling_is_normalised(self):
        assert fleet_config("v100:1", router="Round_Robin").router == "round-robin"

    def test_custom_router_instance_is_carried_through(self):
        class FirstWorkerRouter(Router):
            name = "first-worker"

            def pick(self, workers, ready_ms, estimate):
                return workers[0]

        router = FirstWorkerRouter()
        service = InferenceService(fleet_config("k80:1,v100:1", router=router))
        assert service.router is router
        report = service.run(traffic(num_requests=30))
        assert report.router == "first-worker"
        # Everything went to worker 0 (the k80), as the custom policy says.
        assert {record.worker_id for record in report.records} == {0}

    def test_unknown_fleet_device_fails_at_config_time(self):
        with pytest.raises(KeyError):
            fleet_config("h100:8")


class TestMixedFleetServing:
    def test_mixed_fleet_report_has_per_group_breakdown(self):
        service = InferenceService(fleet_config("k80:1,v100:1"))
        report = service.run(traffic())
        groups = {row["device"]: row for row in report.device_summary}
        assert set(groups) == {"k80", "v100"}
        for row in groups.values():
            assert row["workers"] == 1
            assert 0.0 <= row["utilization"] <= 1.0
        assert report.router == "earliest-finish"
        # Per-record device identity matches the worker that executed it.
        workers = {w.worker_id: w.device.name for w in service.pool.workers}
        assert all(r.device == workers[r.worker_id] for r in report.records)
        # The heavy traffic engaged the fast device at least.
        assert groups["v100"]["batches"] > 0

    def test_same_seed_and_fleet_spec_give_identical_reports(self):
        def run():
            service = InferenceService(fleet_config("k80:2,v100:2"))
            return service.run(traffic(seed=13))

        first, second = run(), run()
        assert first.throughput_rps == second.throughput_rps
        assert first.latency == second.latency
        assert first.queue_delay == second.queue_delay
        assert first.batch_size_counts == second.batch_size_counts
        assert [
            (r.request.request_id, r.worker_id, r.device, r.completion_ms)
            for r in first.records
        ] == [
            (r.request.request_id, r.worker_id, r.device, r.completion_ms)
            for r in second.records
        ]
        assert first.device_summary == second.device_summary

    def test_cold_device_type_compiles_on_first_dispatch(self, tmp_path):
        # Registry pre-warmed for v100 only: the k80 group has no entries yet.
        registry = ScheduleRegistry(root=tmp_path)
        registry.warmup(MODEL, LADDER, get_device("v100"))
        searches_after_warmup = registry.stats.searches
        assert searches_after_warmup == len(LADDER)
        for rung in LADDER:
            assert not registry.contains(MODEL, rung, "k80")

        service = InferenceService(fleet_config("k80:1,v100:1"), registry=registry)
        report = service.run(traffic())
        assert report.num_requests == 120
        # Routing estimates forced the k80 fan-out lazily — cold compiles
        # happened on the request path, not up front, and were persisted.
        assert registry.stats.searches > searches_after_warmup
        assert any(registry.contains(MODEL, rung, "k80") for rung in LADDER)

    def test_warmup_compiles_once_per_device_type_not_per_replica(self):
        service = InferenceService(fleet_config("v100:3"))
        service.warmup()
        assert service.registry.stats.searches == len(LADDER)

    def test_earliest_start_router_on_mixed_fleet_wastes_the_fast_device(self):
        # Device-oblivious routing alternates onto the k80 whenever it is
        # free; the device-aware default routes around it at this load, so
        # earliest-finish must deliver lower mean latency.
        aware = InferenceService(
            fleet_config("k80:2,v100:2", router="earliest-finish")
        ).run(traffic())
        oblivious = InferenceService(
            fleet_config("k80:2,v100:2", router="earliest-start")
        ).run(traffic())
        assert aware.latency.mean_ms < oblivious.latency.mean_ms


class TestFleetComparison:
    def test_mixed_fleet_beats_the_worse_homogeneous_fleet(self):
        table = run_fleet_comparison(
            model=MODEL, fleet="k80:2,v100:2", num_requests=150,
            rate_rps=4000.0, batch_sizes=LADDER, patterns=("poisson",),
            seed=3,
        )
        rows = {row["fleet"]: row for row in table.rows}
        assert set(rows) == {"k80:2,v100:2", "k80:4", "v100:4"}
        worse = min(rows["k80:4"]["throughput_rps"], rows["v100:4"]["throughput_rps"])
        assert rows["k80:2,v100:2"]["throughput_rps"] > worse
        # Per-device-group utilisation is reported for the mixed fleet.
        assert "k80:2@" in rows["k80:2,v100:2"]["groups"]
        assert "v100:2@" in rows["k80:2,v100:2"]["groups"]

    def test_registry_is_shared_across_fleets(self):
        table = run_fleet_comparison(
            model=MODEL, fleet="k80:1,v100:1", num_requests=60,
            rate_rps=3000.0, batch_sizes=(1, 2), patterns=("uniform",),
        )
        # Two device types × two rungs: four searches total, cumulative
        # across rows (later fleets reuse the earlier fleets' artifacts).
        assert table.rows[-1]["searches"] == 4
