"""Live observability through the serving stack: alerts, watch, sampling.

The acceptance bar of the live layer:

* on an overloaded scenario the burn-rate rule **fires mid-run**, before the
  final report's attainment lands below its target;
* alert transitions are virtual-clock deterministic — same seed, same events;
* sampling observes without perturbing: a sampled run's ``describe()`` is
  byte-identical to the unsampled same-seed run;
* the sampler keeps **every** SLO-missed request while holding the peak of
  retained request records at the budget.
"""

from __future__ import annotations

import io

from repro.models import chain_graph
from repro.obs import (
    SamplingConfig,
    SamplingTracer,
    WatchRenderer,
    alerts_snapshot,
    default_alert_rules,
    validate_chrome_trace,
)
from repro.obs.export import chrome_trace
from repro.serve import (
    AutoscaleConfig,
    BatchPolicy,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
)

SLO_MS = 1.5
WINDOW_MS = 2.0


def overload_requests(seed: int = 3):
    """Bursty deadline-carrying traffic that a single k80 cannot hold."""
    return TrafficGenerator(
        TrafficConfig(
            model="toy", pattern="bursty", num_requests=80, rate_rps=4000.0,
            burst_size=32, burst_gap_ms=2.0, sample_sizes=(1, 2),
            sample_weights=(0.6, 0.4), slo_ms=SLO_MS, seed=seed,
        )
    ).generate()


def overload_service(**overrides) -> InferenceService:
    registry = ScheduleRegistry(
        graph_builder=lambda model, bs: chain_graph(length=6, batch_size=bs)
    )
    config = ServingConfig(
        model="toy", devices=("k80",), batch_sizes=(1, 2, 4),
        policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0),
        admission=overrides.pop("admission", "admit-all"),
        autoscale=overrides.pop("autoscale", None),
    )
    return InferenceService(config, registry=registry, **overrides)


def run_with_alerts(**overrides):
    service = overload_service(
        alerts=default_alert_rules(slo_ms=SLO_MS), window_ms=WINDOW_MS,
        **overrides,
    )
    return service.run(overload_requests())


class TestAlertingEndToEnd:
    def test_burn_rate_fires_before_attainment_lands_below_target(self):
        report = run_with_alerts()
        slo = report.slo_summary
        assert slo.attainment_rate < 0.95  # the run really is overloaded
        firing = [
            event for event in report.alerts
            if event.rule == "slo-burn-rate" and event.state == "firing"
        ]
        assert firing, "the burn-rate rule must fire on an overloaded run"
        # The alert leads the report: it fires at a window close inside the
        # run, not after the last request lands.
        last_window_end = max(event.time_ms for event in report.alerts)
        assert firing[0].time_ms <= last_window_end
        assert firing[0].severity == "critical"

    def test_alert_transitions_are_deterministic(self):
        first = alerts_snapshot(run_with_alerts().alerts)
        second = alerts_snapshot(run_with_alerts().alerts)
        assert first == second
        assert first  # non-empty: the scenario alerts

    def test_describe_lists_the_alert_section(self):
        report = run_with_alerts()
        text = report.describe()
        assert "alerts    :" in text
        assert "slo-burn-rate" in text

    def test_report_without_alerts_keeps_the_old_shape(self):
        report = overload_service().run(overload_requests())
        assert report.alerts == []
        assert "alerts    :" not in report.describe()

    def test_firing_alert_scales_the_pool_up(self):
        report = run_with_alerts(
            autoscale=AutoscaleConfig(
                min_workers=1, max_workers=3, interval_ms=5.0,
                scale_up_backlog_ms=1e9,  # the watermark alone never trips
            )
        )
        alert_scale_ups = [
            event for event in report.scale_events
            if event.action == "up" and event.reason.startswith("alert ")
        ]
        assert alert_scale_ups, "a firing alert must grow the pool"

    def test_watch_renders_dashboard_lines(self):
        stream = io.StringIO()
        service = overload_service(
            alerts=default_alert_rules(slo_ms=SLO_MS),
            watch=WatchRenderer(stream=stream), window_ms=WINDOW_MS,
        )
        service.run(overload_requests())
        lines = stream.getvalue().splitlines()
        assert lines
        assert all("rps" in line and "p99" in line for line in lines)
        assert any("ALERTS:" in line for line in lines)


class TestSamplingEndToEnd:
    def test_sampled_describe_is_byte_identical_to_unsampled(self):
        unsampled = overload_service().run(overload_requests())
        sampled_service = overload_service(
            tracer=SamplingTracer(
                SamplingConfig(max_records=60, head_every=10, track_budget=50)
            )
        )
        sampled = sampled_service.run(overload_requests())
        assert sampled.describe() == unsampled.describe()

    def test_sampler_keeps_every_slo_missed_request(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=40, head_every=0, track_budget=50)
        )
        report = overload_service(tracer=tracer).run(overload_requests())
        violations = report.slo_summary.violations
        assert violations > 0
        meta = tracer.sampling_metadata()
        assert meta["requests"]["slo_miss_kept"] == violations
        assert meta["requests"]["dropped"] > 0  # the budget did bind

    def test_peak_retained_request_records_honours_the_budget(self):
        # The budget must exceed the scenario's peak concurrency: an open
        # lifecycle cannot be shed before its outcome is known (that *is*
        # tail sampling), so the enforceable floor is open buffers plus
        # must-keeps.  Above that floor the peak pins at the budget exactly.
        budget = 120
        tracer = SamplingTracer(
            SamplingConfig(max_records=budget, head_every=0, track_budget=50)
        )
        overload_service(tracer=tracer).run(overload_requests())
        meta = tracer.sampling_metadata()
        assert meta["records"]["peak_request_records"] <= budget
        assert meta["requests"]["dropped"] > 0  # ...while still binding

    def test_sampled_trace_still_validates(self):
        tracer = SamplingTracer(
            SamplingConfig(max_records=40, head_every=10, track_budget=50)
        )
        overload_service(tracer=tracer).run(overload_requests())
        document = chrome_trace(tracer)
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["sampling"]["requests"]["total"] == 80
