"""Tests for the admission-control policies."""

from __future__ import annotations

import pytest

from repro.models import chain_graph
from repro.serve import (
    AdmissionPolicy,
    AdmitAll,
    BatchPolicy,
    DeadlineAwareAdmission,
    InferenceRequest,
    InferenceService,
    PriorityAdmission,
    ScheduleRegistry,
    ServingConfig,
    get_admission_policy,
    list_admission_policies,
)


def toy_service(**overrides) -> InferenceService:
    overrides.setdefault("model", "toy")
    overrides.setdefault("devices", ("v100",))
    overrides.setdefault("batch_sizes", (1, 2, 4))
    overrides.setdefault("policy", BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
    registry = ScheduleRegistry(
        graph_builder=lambda model, bs: chain_graph(length=3, batch_size=bs)
    )
    return InferenceService(ServingConfig(**overrides), registry=registry)


def request(request_id, arrival_ms, **kwargs):
    return InferenceRequest(request_id=request_id, model="toy",
                            arrival_ms=arrival_ms, **kwargs)


class TestRegistry:
    def test_lists_all_policies(self):
        assert list_admission_policies() == ["admit-all", "deadline", "priority"]

    def test_get_normalises_spelling(self):
        assert isinstance(get_admission_policy("Admit_All"), AdmitAll)
        assert isinstance(get_admission_policy("DEADLINE"), DeadlineAwareAdmission)

    def test_get_passes_instances_through(self):
        policy = PriorityAdmission(slack_ms=1.0)
        assert get_admission_policy(policy) is policy

    def test_unknown_name_lists_the_catalog(self):
        with pytest.raises(ValueError, match="admit-all"):
            get_admission_policy("yolo")

    def test_config_resolves_names_eagerly(self):
        with pytest.raises(ValueError):
            ServingConfig(model="toy", admission="nope")

    def test_config_carries_instances(self):
        policy = DeadlineAwareAdmission(slack_ms=0.5)
        config = ServingConfig(model="toy", admission=policy)
        assert config.admission is policy


class TestAdmitAll:
    def test_never_rejects_even_hopeless_deadlines(self):
        service = toy_service()  # admit-all is the default
        requests = [request(i, arrival_ms=0.0, deadline_ms=0.0) for i in range(4)]
        report = service.run(requests)
        assert report.num_requests == 4
        assert report.rejected == []
        # They were admitted, executed, and all violated their deadline.
        assert report.slo_summary.violations == 4
        assert report.slo_summary.attainment_rate == 0.0


class TestDeadlineAwareAdmission:
    def test_requests_without_deadlines_always_admit(self):
        service = toy_service(admission="deadline")
        report = service.run([request(i, arrival_ms=float(i)) for i in range(6)])
        assert report.num_requests == 6
        assert report.rejected == []

    def test_rejects_only_the_predicted_misses(self):
        service = toy_service(admission="deadline")
        generous = request(0, arrival_ms=0.0, deadline_ms=1000.0)
        hopeless = request(1, arrival_ms=0.0, deadline_ms=0.0)
        report = service.run([generous, hopeless])
        assert [r.request.request_id for r in report.records] == [0]
        assert [r.request.request_id for r in report.rejected] == [1]
        assert report.rejected[0].reason == "predicted-deadline-miss"

    def test_slack_loosens_the_gate(self):
        service = toy_service(admission=DeadlineAwareAdmission(slack_ms=1e6))
        report = service.run([request(0, arrival_ms=0.0, deadline_ms=0.0)])
        assert report.num_requests == 1
        assert report.rejected == []

    def test_backlog_on_the_pool_triggers_rejections(self):
        service = toy_service(admission="deadline")
        # Pin the worker's horizon far in the future: every deadline-carrying
        # arrival now predicts a miss.
        service.pool.workers[0].busy_until_ms = 1e6
        report = service.run([
            request(0, arrival_ms=0.0, deadline_ms=50.0),
            request(1, arrival_ms=0.0),  # no SLO: rides regardless
        ])
        assert [r.request.request_id for r in report.rejected] == [0]
        assert [r.request.request_id for r in report.records] == [1]


class TestPriorityAdmission:
    def test_order_key_ranks_priority_then_fifo(self):
        policy = PriorityAdmission()
        low_early = request(0, arrival_ms=0.0, priority=0)
        high_late = request(1, arrival_ms=1.0, priority=5)
        ranked = sorted([low_early, high_late], key=policy.order_key)
        assert [r.request_id for r in ranked] == [1, 0]

    def test_high_priority_dispatches_ahead_within_a_batch(self):
        service = toy_service(admission="priority",
                              policy=BatchPolicy(max_batch_size=2, max_wait_ms=5.0))
        low = request(0, arrival_ms=0.0, priority=0)
        high = request(1, arrival_ms=1.0, priority=3)
        report = service.run([low, high])
        assert report.num_batches == 1  # they closed "full" together
        ids_in_dispatch_order = [r.request.request_id for r in report.records]
        assert ids_in_dispatch_order == [1, 0]

    def test_preemption_rescues_a_tight_high_priority_deadline(self):
        service = toy_service(admission="priority",
                              policy=BatchPolicy(max_batch_size=4, max_wait_ms=10.0))
        exec_ms = service.selector.predicted_latency(
            "toy", 2, service.pool.workers[0].device
        )
        low = request(0, arrival_ms=0.0, priority=0)
        # Meets its deadline only if dispatched on arrival — waiting out the
        # 10ms batch window would blow it.
        high = request(1, arrival_ms=1.0, priority=3, deadline_ms=exec_ms + 1.0)
        report = service.run([low, high])
        by_id = {r.request.request_id: r for r in report.records}
        assert by_id[1].batched_ms == 1.0  # preempted: closed on arrival
        assert by_id[1].deadline_met
        assert by_id[0].batched_ms == 1.0  # the low request rode along

    def test_preemption_cannot_rescue_past_a_busy_worker_horizon(self):
        # Skipping the batching wait only helps when the wait is the binding
        # term; with the worker horizon far out, immediate dispatch still
        # misses, so the request must be shed instead of preempting a batch.
        service = toy_service(admission="priority",
                              policy=BatchPolicy(max_batch_size=4, max_wait_ms=200.0))
        service.pool.workers[0].busy_until_ms = 100.0
        exec_ms = service.selector.predicted_latency(
            "toy", 2, service.pool.workers[0].device
        )
        low = request(0, arrival_ms=0.0, priority=0)
        high = request(1, arrival_ms=1.0, priority=3, deadline_ms=exec_ms + 50.0)
        report = service.run([low, high])
        assert [r.request.request_id for r in report.rejected] == [1]
        assert report.rejected[0].reason == "predicted-deadline-miss"
        # No preemption fired: the surviving batch waited out its window.
        assert report.records[0].batched_ms == pytest.approx(200.0)

    def test_no_preemption_when_the_deadline_is_safe_anyway(self):
        service = toy_service(admission="priority",
                              policy=BatchPolicy(max_batch_size=4, max_wait_ms=10.0))
        low = request(0, arrival_ms=0.0, priority=0)
        high = request(1, arrival_ms=1.0, priority=3, deadline_ms=1000.0)
        report = service.run([low, high])
        # Batching wins: both wait out the window and share one batch.
        assert all(r.batched_ms == pytest.approx(10.0) for r in report.records)

    def test_rejections_below_the_top_class_are_labelled_as_shed(self):
        service = toy_service(admission="priority")
        service.pool.workers[0].busy_until_ms = 1e6  # hopeless backlog
        report = service.run([
            request(0, arrival_ms=0.0, priority=2, deadline_ms=10.0),
            request(1, arrival_ms=0.5, priority=0, deadline_ms=10.0),
        ])
        reasons = {r.request.request_id: r.reason for r in report.rejected}
        # The top class's own overflow is an ordinary predicted miss; only
        # classes below the top one are "shed".
        assert reasons[0] == "predicted-deadline-miss"
        assert reasons[1] == "low-priority-shed"

    def test_preemption_rescues_a_vip_arriving_to_an_empty_queue(self):
        # Admission must be monotonic in load: a request that immediate
        # dispatch would save cannot be shed just because nothing is queued.
        service = toy_service(admission="priority",
                              policy=BatchPolicy(max_batch_size=4, max_wait_ms=10.0))
        exec_ms = service.selector.predicted_latency(
            "toy", 1, service.pool.workers[0].device
        )
        vip = request(0, arrival_ms=0.0, priority=3, deadline_ms=exec_ms + 1.0)
        report = service.run([vip])
        assert report.rejected == []
        assert report.records[0].batched_ms == 0.0  # dispatched alone, on arrival
        assert report.records[0].deadline_met

    def test_protection_margin_sheds_the_marginal_low_class_request(self):
        # A below-top-class request predicted to meet its deadline with only
        # a sliver of budget to spare is shed: the headroom is reserved for
        # the top class.  protection=0.0 restores the plain deadline gate.
        def scenario(policy):
            service = toy_service(admission=policy)
            # A pinned horizon makes the worker, not the batching wait, the
            # binding term — so preemption cannot rescue the low request
            # either, and only the margin decides.
            service.pool.workers[0].busy_until_ms = 10.0
            high = request(0, arrival_ms=0.0, priority=3)
            # Predicted to finish ~10.1ms in against a 12.5ms absolute
            # deadline: a couple of ms to spare, far less than the capped
            # margin (0.75 × 12ms) the protection demands.
            low = request(1, arrival_ms=0.5, priority=0, deadline_ms=12.0)
            return service.run([high, low])

        protected = scenario(PriorityAdmission())
        assert [r.request.request_id for r in protected.rejected] == [1]
        assert protected.rejected[0].reason == "low-priority-shed"

        unprotected = scenario(PriorityAdmission(protection=0.0))
        assert unprotected.rejected == []
        by_id = {r.request.request_id: r for r in unprotected.records}
        assert by_id[1].deadline_met

    def test_protection_margin_arithmetic_scales_with_class_distance(self):
        policy = PriorityAdmission(protection=0.25)
        low = request(0, arrival_ms=0.0, priority=0, deadline_ms=10.0)
        # No class seen yet, and the top class itself: no margin.
        assert policy._protection_margin_ms(low) == 0.0
        policy._highest_seen = 0
        assert policy._protection_margin_ms(low) == 0.0
        # One level below the top: a quarter of the budget.
        policy._highest_seen = 1
        assert policy._protection_margin_ms(low) == pytest.approx(2.5)
        # Deeply subordinate: capped at MAX_PROTECTION of the budget.
        policy._highest_seen = 10
        assert policy._protection_margin_ms(low) == pytest.approx(7.5)

    def test_priority_class_floor_resets_between_runs_of_one_service(self):
        # Worker horizons deliberately persist across run() calls (a
        # long-lived deployment), but the policy's class bookkeeping must
        # not: a priority-0-only second run has 0 as its top class, so its
        # rejections are ordinary predicted misses — not "low-priority-shed"
        # relative to the previous run's class 5.
        service = toy_service(admission="priority")
        service.run([request(0, arrival_ms=0.0, priority=5)])
        service.pool.workers[0].busy_until_ms = 1e6
        report = service.run([request(1, arrival_ms=0.0, priority=0,
                                      deadline_ms=10.0)])
        assert [r.reason for r in report.rejected] == ["predicted-deadline-miss"]


class TestPolicyInterface:
    def test_custom_policy_instances_plug_in(self):
        class EvenOnly(AdmissionPolicy):
            name = "even-only"

            def admit(self, request, state):
                from repro.serve import AdmissionDecision
                if request.request_id % 2 == 0:
                    return AdmissionDecision.admit()
                return AdmissionDecision.reject("odd")

        service = toy_service(admission=EvenOnly())
        report = service.run([request(i, arrival_ms=float(i)) for i in range(6)])
        assert sorted(r.request.request_id for r in report.records) == [0, 2, 4]
        assert sorted(r.request.request_id for r in report.rejected) == [1, 3, 5]
        assert report.admission == "even-only"
