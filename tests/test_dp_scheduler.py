"""Unit tests for the IOS dynamic-programming scheduler (Algorithm 1)."""

from __future__ import annotations


import pytest

from repro.core import (
    FlopsCostModel,
    IOSScheduler,
    ParallelizationStrategy,
    PruningStrategy,
    SchedulerConfig,
    SimulatedCostModel,
    greedy_schedule,
    measure_schedule,
    schedule_latency_ms,
    sequential_schedule,
)
from repro.models import build_model, chain_graph, diamond_graph, figure2_block, figure5_graph


def brute_force_optimal_latency(graph, cost_model) -> float:
    """Optimal schedule latency by enumerating every ordered partition.

    Only feasible for tiny graphs; each stage uses the better strategy, exactly
    like GENERATE STAGE does.
    """
    names = graph.schedulable_names()

    def helper(remaining: frozenset) -> float:
        if not remaining:
            return 0.0
        best = float("inf")
        # Enumerate endings of `remaining` by brute force.
        members = sorted(remaining)
        for size in range(1, len(members) + 1):
            from itertools import combinations

            for subset in combinations(members, size):
                subset_set = set(subset)
                outside = remaining - subset_set
                valid = all(
                    succ not in outside
                    for op in subset
                    for succ in graph.successors(op)
                    if succ in remaining
                )
                if not valid:
                    continue
                choice = cost_model.generate_stage(graph, list(subset))
                best = min(best, choice.latency_ms + helper(frozenset(outside)))
        return best

    return helper(frozenset(names))


class TestOptimality:
    @pytest.mark.parametrize("graph_factory", [figure5_graph, diamond_graph, figure2_block])
    def test_dp_matches_brute_force(self, graph_factory, v100):
        graph = graph_factory()
        cost_model = SimulatedCostModel(v100)
        scheduler = IOSScheduler(cost_model, SchedulerConfig(pruning=PruningStrategy.unpruned()))
        result = scheduler.optimize_graph(graph)
        brute = brute_force_optimal_latency(graph, cost_model)
        assert result.predicted_latency_ms == pytest.approx(brute, rel=1e-9)

    def test_ios_never_worse_than_sequential_or_greedy(self, v100):
        for factory in (figure5_graph, diamond_graph, figure2_block):
            graph = factory()
            scheduler = IOSScheduler(SimulatedCostModel(v100))
            ios = scheduler.optimize_graph(graph).schedule
            ios_latency = schedule_latency_ms(graph, ios, v100)
            assert ios_latency <= schedule_latency_ms(graph, sequential_schedule(graph), v100) + 1e-9
            assert ios_latency <= schedule_latency_ms(graph, greedy_schedule(graph), v100) + 1e-9

    def test_chain_uses_no_parallelism(self, v100):
        # A pure chain offers no inter-operator parallelism: IOS may pack
        # consecutive operators into one single-group stage (saving stage
        # synchronisations) but must never claim concurrency.
        graph = chain_graph(length=5)
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(graph)
        for stage in result.schedule.stages:
            assert len(stage.groups(graph)) == 1
        ios_latency = schedule_latency_ms(graph, result.schedule, v100)
        seq_latency = schedule_latency_ms(graph, sequential_schedule(graph), v100)
        assert ios_latency <= seq_latency + 1e-9

    def test_figure2_finds_balanced_two_stage_schedule(self, fig2, v100):
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(fig2)
        stages = [set(stage.operators) for stage in result.schedule.stages]
        # The paper's optimal schedule runs {a, d} then {b, c} (then the concat).
        assert {"conv_a", "conv_d"} in stages
        assert {"conv_b", "conv_c"} in stages

    def test_predicted_latency_close_to_executed(self, fig2, v100):
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(fig2)
        executed = measure_schedule(fig2, result.schedule, v100).latency_ms
        assert result.predicted_latency_ms == pytest.approx(executed, rel=0.05)


class TestVariants:
    def test_variant_configs(self):
        both = SchedulerConfig.variant("ios-both")
        parallel = SchedulerConfig.variant("ios-parallel")
        merge = SchedulerConfig.variant("ios-merge")
        assert ParallelizationStrategy.MERGE in both.strategies
        assert parallel.strategies == (ParallelizationStrategy.CONCURRENT,)
        assert merge.strategies == (ParallelizationStrategy.MERGE,)
        with pytest.raises(KeyError):
            SchedulerConfig.variant("ios-quantum")

    def test_ios_both_at_least_as_good_as_restricted_variants(self, v100):
        graph = build_model("squeezenet")
        latencies = {}
        for variant in ("ios-both", "ios-parallel", "ios-merge"):
            scheduler = IOSScheduler(SimulatedCostModel(v100), SchedulerConfig.variant(variant))
            schedule = scheduler.optimize_graph(graph).schedule
            latencies[variant] = schedule_latency_ms(graph, schedule, v100)
        assert latencies["ios-both"] <= latencies["ios-parallel"] + 1e-9
        assert latencies["ios-both"] <= latencies["ios-merge"] + 1e-9

    def test_ios_merge_on_unmergeable_graph_equals_sequential(self, v100):
        # RandWire-style separable convolutions cannot merge, so IOS-Merge
        # degenerates to the sequential schedule (Section 6.1): every stage is
        # a single operator and the latency matches the sequential baseline.
        graph = build_model("randwire", nodes_per_stage=6)
        scheduler = IOSScheduler(SimulatedCostModel(v100), SchedulerConfig.variant("ios-merge"))
        merge_schedule = scheduler.optimize_graph(graph).schedule
        assert all(len(stage) == 1 for stage in merge_schedule.stages)
        seq_latency = schedule_latency_ms(graph, sequential_schedule(graph), v100)
        assert schedule_latency_ms(graph, merge_schedule, v100) == pytest.approx(seq_latency, rel=0.02)


class TestPruningAndStats:
    def test_pruning_reduces_transitions(self, fig2, v100):
        unpruned = IOSScheduler(
            SimulatedCostModel(v100), SchedulerConfig(pruning=PruningStrategy.unpruned())
        ).optimize_graph(fig2)
        pruned = IOSScheduler(
            SimulatedCostModel(v100), SchedulerConfig(pruning=PruningStrategy(1, 2))
        ).optimize_graph(fig2)
        assert pruned.total_transitions < unpruned.total_transitions
        # Pruning can only make the schedule worse or equal.
        assert pruned.predicted_latency_ms >= unpruned.predicted_latency_ms - 1e-9

    def test_stats_fields(self, fig2, v100):
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(fig2)
        stats = result.block_stats[0]
        assert stats.num_operators == 5
        assert stats.width == 3
        assert stats.num_states > 0
        assert stats.num_transitions >= stats.num_states
        assert stats.num_measurements > 0
        assert stats.elapsed_s >= 0
        assert result.total_measurements == sum(s.num_measurements for s in result.block_stats)

    def test_schedule_is_valid(self, v100):
        graph = build_model("squeezenet")
        result = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(graph)
        result.schedule.validate(graph)
        assert result.schedule.origin.startswith("ios-both")


def repeated_blocks_graph(num_blocks: int = 3):
    """A graph of ``num_blocks`` structurally identical two-branch blocks."""
    from repro.ir import GraphBuilder, TensorShape

    builder = GraphBuilder("repeated", TensorShape(1, 64, 14, 14))
    x = builder.input_name
    for i in range(num_blocks):
        with builder.block(f"block_{i}"):
            left = builder.conv2d(f"b{i}_left", x, out_channels=32, kernel=3)
            right = builder.conv2d(f"b{i}_right", x, out_channels=32, kernel=3)
            x = builder.concat(f"b{i}_concat", [left, right])
    return builder.build()


class TestBlockReuse:
    def test_identical_blocks_share_one_search(self, v100):
        graph = repeated_blocks_graph(4)
        scheduler = IOSScheduler(SimulatedCostModel(v100))
        result = scheduler.optimize_graph(graph)
        reused = [s for s in result.block_stats if s.reused_from is not None]
        # block_0 consumes the 64-channel input, blocks 1..3 the 64-channel
        # concat: blocks 2 and 3 must reuse block 1's search.
        assert len(reused) >= 2
        for stats in reused:
            assert stats.num_measurements == 0

    def test_reuse_can_be_disabled(self, v100):
        graph = repeated_blocks_graph(3)
        config = SchedulerConfig(reuse_identical_blocks=False)
        result = IOSScheduler(SimulatedCostModel(v100), config).optimize_graph(graph)
        assert all(s.reused_from is None for s in result.block_stats)

    def test_reused_schedule_is_still_valid_and_equal_quality(self, v100):
        graph = repeated_blocks_graph(3)
        with_reuse = IOSScheduler(SimulatedCostModel(v100)).optimize_graph(graph)
        without = IOSScheduler(
            SimulatedCostModel(v100), SchedulerConfig(reuse_identical_blocks=False)
        ).optimize_graph(graph)
        with_reuse.schedule.validate(graph)
        assert schedule_latency_ms(graph, with_reuse.schedule, v100) == pytest.approx(
            schedule_latency_ms(graph, without.schedule, v100), rel=0.02
        )
