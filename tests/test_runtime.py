"""Unit tests for repro.runtime: executor, profiler, warp tracing, memory planner."""

from __future__ import annotations

import pytest

from repro.models import build_model, figure2_block
from repro.runtime import (
    ExecutionPlan,
    ExecutionStage,
    Executor,
    MemoryPlanner,
    OutOfMemoryError,
    Profiler,
    WarpTrace,
    compare_traces,
    sequential_plan,
    trace_from_timeline,
)


class TestExecutor:
    def test_sequential_plan_covers_kernel_operators(self, fig2):
        plan = sequential_plan(fig2)
        assert plan.num_stages() == 5
        assert plan.batch_size == 1
        assert plan.flops() == pytest.approx(fig2.total_flops())

    def test_run_produces_monotone_stage_times(self, fig2, v100):
        result = Executor(v100).run(sequential_plan(fig2))
        events = result.stage_events()
        assert len(events) == 5
        for first, second in zip(events, events[1:]):
            assert second.start_ms == pytest.approx(first.end_ms)
        assert result.latency_ms == pytest.approx(events[-1].end_ms)

    def test_concurrent_stage_faster_than_sequential(self, fig2, v100):
        ops = [fig2.nodes["conv_a"], fig2.nodes["conv_c"]]
        sequential = ExecutionPlan("seq", [ExecutionStage(groups=[[op]]) for op in ops])
        concurrent = ExecutionPlan("par", [ExecutionStage(groups=[[ops[0]], [ops[1]]])])
        executor = Executor(v100)
        assert executor.latency_ms(concurrent) < executor.latency_ms(sequential)

    def test_empty_stage_costs_nothing(self, v100):
        plan = ExecutionPlan("empty", [ExecutionStage(groups=[[]])])
        assert Executor(v100).latency_ms(plan) == 0.0

    def test_throughput(self, fig2, v100):
        result = Executor(v100).run(sequential_plan(fig2))
        assert result.throughput() == pytest.approx(1 / (result.latency_ms / 1e3))

    def test_batch_increases_latency_but_also_throughput(self, v100):
        graph1 = figure2_block(batch_size=1)
        graph8 = figure2_block(batch_size=8)
        executor = Executor(v100)
        result1 = executor.run(sequential_plan(graph1))
        result8 = executor.run(sequential_plan(graph8))
        assert result8.latency_ms > result1.latency_ms
        assert result8.throughput() > result1.throughput()

    def test_record_trace_produces_timeline(self, fig2, v100):
        result = Executor(v100, record_trace=True).run(sequential_plan(fig2))
        assert result.timeline()
        assert Executor(v100, record_trace=False).run(sequential_plan(fig2)).timeline() == []

    def test_kernel_events_in_global_time(self, fig2, v100):
        result = Executor(v100).run(sequential_plan(fig2))
        kernel_events = result.kernel_events()
        assert len(kernel_events) == 5
        assert kernel_events[1].start_ms >= kernel_events[0].end_ms - 1e-9


class TestProfiler:
    def test_noiseless_measurement_matches_executor(self, fig2, v100):
        profiler = Profiler(v100, noise_std=0.0)
        plan = sequential_plan(fig2)
        measurement = profiler.measure_plan(plan)
        assert measurement.mean_ms == pytest.approx(Executor(v100).latency_ms(plan))
        assert measurement.std_ms == 0.0
        assert measurement.min_ms == measurement.max_ms == measurement.mean_ms

    def test_noisy_measurement_reproducible(self, fig2, v100):
        plan = sequential_plan(fig2)
        first = Profiler(v100, noise_std=0.05, seed=7).measure_plan(plan)
        second = Profiler(v100, noise_std=0.05, seed=7).measure_plan(plan)
        assert first.samples == second.samples
        assert first.std_ms > 0

    def test_counts_and_gpu_time_accumulate(self, fig2, v100):
        profiler = Profiler(v100, warmup=2, repeats=5)
        plan = sequential_plan(fig2)
        profiler.measure_plan(plan)
        profiler.measure_plan(plan)
        assert profiler.measurement_count == 2
        expected = 2 * 7 * Executor(v100).latency_ms(plan)
        assert profiler.total_profiling_ms == pytest.approx(expected)

    def test_stage_latency(self, fig2, v100):
        profiler = Profiler(v100)
        stage = ExecutionStage(groups=[[fig2.nodes["conv_a"]]])
        assert profiler.stage_latency_ms(stage) > 0

    def test_invalid_arguments(self, v100):
        with pytest.raises(ValueError):
            Profiler(v100, repeats=0)
        with pytest.raises(ValueError):
            Profiler(v100, noise_std=-1)


class TestWarpTrace:
    def test_trace_sampling(self, fig2, v100):
        result = Executor(v100, record_trace=True).run(sequential_plan(fig2))
        trace = trace_from_timeline(result.timeline(), sample_period_ms=0.01)
        assert trace.num_samples > 0
        assert trace.duration_ms == pytest.approx(result.latency_ms, rel=0.05)
        assert 0 < trace.average_active_warps() <= v100.max_active_warps

    def test_empty_timeline(self):
        trace = trace_from_timeline([], sample_period_ms=0.01)
        assert trace.num_samples == 0
        assert trace.average_active_warps() == 0.0
        assert trace.warps_per_ms() == 0.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            trace_from_timeline([], sample_period_ms=0.0)

    def test_compare_traces(self):
        base = WarpTrace(0.01, (100.0, 100.0), 0.02)
        better = WarpTrace(0.01, (150.0, 250.0), 0.02)
        assert compare_traces(base, better) == pytest.approx(2.0)
        empty = WarpTrace(0.01, (), 0.0)
        assert compare_traces(empty, better) == float("inf")
        assert compare_traces(empty, empty) == 1.0


class TestMemoryPlanner:
    def test_liveness_reuse_smaller_than_sum(self):
        graph = build_model("squeezenet", batch_size=8)
        reuse = MemoryPlanner(activation_reuse=True).plan(graph)
        hoard = MemoryPlanner(activation_reuse=False).plan(graph)
        assert reuse.peak_activation_bytes < hoard.peak_activation_bytes
        assert reuse.weight_bytes == hoard.weight_bytes == graph.total_weight_bytes()

    def test_activation_copies_multiplier(self, diamond):
        single = MemoryPlanner(activation_copies=1).plan(diamond)
        double = MemoryPlanner(activation_copies=2).plan(diamond)
        assert double.peak_activation_bytes == 2 * single.peak_activation_bytes

    def test_peak_scales_with_batch(self):
        graph1 = figure2_block(batch_size=1)
        graph64 = figure2_block(batch_size=64)
        planner = MemoryPlanner()
        assert planner.plan(graph64).peak_activation_bytes > 32 * planner.plan(graph1).peak_activation_bytes

    def test_check_raises_on_oom(self, v100):
        graph = figure2_block(batch_size=4096)
        planner = MemoryPlanner(activation_reuse=False)
        with pytest.raises(OutOfMemoryError):
            planner.check(graph, v100)

    def test_check_passes_for_small_graph(self, diamond, v100):
        plan = MemoryPlanner().check(diamond, v100)
        assert plan.fits(v100)
        assert plan.total_gib < 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            MemoryPlanner(workspace_factor=-1)
        with pytest.raises(ValueError):
            MemoryPlanner(activation_copies=0)
        with pytest.raises(ValueError):
            MemoryPlanner(framework_overhead_bytes=-5)
