"""Unit tests for repro.hardware: devices, kernels, latency estimates."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware import (
    CUDNN_PROFILE,
    KERNEL_PROFILES,
    TENSORRT_PROFILE,
    TVM_AUTOTUNE_PROFILE,
    DeviceSpec,
    KernelProfile,
    build_kernel,
    estimate_operator_latency,
    estimate_sequential_latency,
    device_utilization,
    get_device,
    list_devices,
)
from repro.ir.ops import Concat, Conv2d, Identity, Linear, Pool2d, SeparableConv2d
from repro.ir.tensor import TensorShape

X = TensorShape(1, 384, 15, 15)


def _conv(out_channels=384, kernel=3, batch=1) -> Conv2d:
    conv = Conv2d("c", ["x"], out_channels=out_channels, kernel=kernel)
    conv.bind([TensorShape(batch, 384, 15, 15)])
    return conv


class TestDeviceSpecs:
    def test_presets_available(self):
        assert {"v100", "k80", "rtx2080ti", "gtx1080", "gtx980ti", "a100"} <= set(list_devices())

    def test_get_device_aliases(self):
        assert get_device("Tesla V100").name == "v100"
        assert get_device("2080Ti").name == "rtx2080ti"
        assert get_device("tesla-k80").name == "k80"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("tpu-v9000")

    def test_derived_units(self, v100):
        assert v100.peak_flops_per_ms == pytest.approx(15.7e9)
        assert v100.bandwidth_bytes_per_ms == pytest.approx(900e6)
        assert v100.total_block_slots == 160
        assert v100.flops_per_slot_ms == pytest.approx(15.7e9 / 160)
        assert v100.max_active_warps == 160 * 8

    def test_memory_bytes(self, v100):
        assert v100.memory_bytes == 16 * 1024**3

    def test_v100_stronger_than_k80(self, v100, k80):
        assert v100.peak_fp32_tflops > 3 * k80.peak_fp32_tflops
        assert v100.total_block_slots > k80.total_block_slots

    def test_scaled_override(self, v100):
        bigger = v100.scaled(num_sms=160)
        assert bigger.total_block_slots == 320
        assert v100.num_sms == 80  # original untouched

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", num_sms=0, peak_fp32_tflops=1.0,
                       memory_bandwidth_gb_s=100, memory_gb=8)
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", num_sms=10, peak_fp32_tflops=-1.0,
                       memory_bandwidth_gb_s=100, memory_gb=8)


class TestKernelProfiles:
    def test_registry(self):
        assert set(KERNEL_PROFILES) == {"cudnn", "tvm-autotune", "tensorrt"}

    def test_cudnn_sepconv_much_worse_than_conv(self):
        assert CUDNN_PROFILE.efficiency_for("sep_conv2d") < 0.5 * CUDNN_PROFILE.efficiency_for("conv2d")

    def test_tvm_autotune_beats_cudnn_on_sepconv(self):
        assert TVM_AUTOTUNE_PROFILE.efficiency_for("sep_conv2d") > 1.5 * CUDNN_PROFILE.efficiency_for("sep_conv2d")

    def test_tensorrt_best_dense_conv(self):
        assert TENSORRT_PROFILE.efficiency_for("conv2d") >= CUDNN_PROFILE.efficiency_for("conv2d")

    def test_default_efficiency_used_for_unknown_kind(self):
        assert CUDNN_PROFILE.efficiency_for("unknown_kind") == CUDNN_PROFILE.default_efficiency

    def test_invalid_efficiency_rejected(self):
        bad = KernelProfile(name="bad", efficiency={"conv2d": 1.5})
        with pytest.raises(ValueError):
            bad.efficiency_for("conv2d")

    def test_launch_overhead_scale(self, v100):
        slow = KernelProfile(name="slow", launch_overhead_scale=3.0)
        assert slow.launch_overhead_ms(v100) == pytest.approx(3 * v100.kernel_launch_overhead_ms)


class TestKernelLowering:
    def test_conv_block_geometry_matches_figure2(self, v100):
        # Conv [a] of Figure 2: 384 channels over 15x15 -> 12 x 4 x 1 = 48 blocks,
        # i.e. 30% occupancy on the V100 -- the under-utilisation the paper shows.
        kernel = build_kernel(_conv(384), v100)
        assert kernel.num_blocks == 48
        assert kernel.occupancy(v100) == pytest.approx(0.3)

    def test_wider_conv_has_more_blocks(self, v100):
        assert build_kernel(_conv(768), v100).num_blocks == 2 * build_kernel(_conv(384), v100).num_blocks

    def test_batch_scales_blocks(self, v100):
        assert build_kernel(_conv(batch=8), v100).num_blocks == 8 * build_kernel(_conv(), v100).num_blocks

    def test_identity_lowers_to_none(self, v100):
        op = Identity("i", ["x"])
        op.bind([X])
        assert build_kernel(op, v100) is None

    def test_unbound_operator_rejected(self, v100):
        with pytest.raises(ValueError):
            build_kernel(Conv2d("c", ["x"], 8, 3), v100)

    def test_elementwise_blocks(self, v100):
        concat = Concat("k", ["a", "b"])
        concat.bind([X, X])
        kernel = build_kernel(concat, v100)
        assert kernel.num_blocks == -(-concat.output_shape.numel() // 4096)

    def test_linear_blocks(self, v100):
        fc = Linear("fc", ["x"], out_features=1000)
        fc.bind([TensorShape(1, 2048)])
        assert build_kernel(fc, v100).num_blocks == 16

    def test_sepconv_uses_profile_efficiency(self, v100):
        sep = SeparableConv2d("s", ["x"], out_channels=384, kernel=3)
        sep.bind([X])
        kernel = build_kernel(sep, v100, CUDNN_PROFILE)
        assert kernel.efficiency == CUDNN_PROFILE.efficiency_for("sep_conv2d")

    def test_kernel_validation(self, v100):
        kernel = build_kernel(_conv(), v100)
        with pytest.raises(ValueError):
            type(kernel)(**{**kernel.__dict__, "num_blocks": 0})


class TestKernelSpecMath:
    def test_compute_time_single_wave(self, v100):
        kernel = build_kernel(_conv(384), v100)
        expected = kernel.flops / (48 * v100.flops_per_slot_ms * kernel.efficiency)
        assert kernel.compute_time_ms(v100) == pytest.approx(expected)

    def test_wave_quantization(self, v100):
        kernel = build_kernel(_conv(384), v100)
        # With only 24 slots the 48 blocks need 2 waves -> double the time.
        assert kernel.compute_time_ms(v100, slots=24) == pytest.approx(
            2 * kernel.compute_time_ms(v100, slots=48)
        )

    def test_memory_time_scales_with_bandwidth_fraction(self, v100):
        kernel = build_kernel(_conv(384), v100)
        assert kernel.memory_time_ms(v100, 0.5) == pytest.approx(2 * kernel.memory_time_ms(v100, 1.0))

    def test_duration_alone_is_roofline_plus_launch(self, v100):
        kernel = build_kernel(_conv(384), v100)
        busy = max(kernel.compute_time_ms(v100), kernel.memory_time_ms(v100))
        assert kernel.duration_alone_ms(v100) == pytest.approx(busy + kernel.launch_overhead_ms)

    def test_achieved_tflops_below_peak(self, v100):
        kernel = build_kernel(_conv(768), v100)
        assert 0 < kernel.achieved_tflops(v100) < v100.peak_fp32_tflops

    @given(out_channels=st.sampled_from([32, 64, 128, 256, 512, 1024]),
           kernel_size=st.sampled_from([1, 3, 5]))
    def test_more_work_never_faster_property(self, out_channels, kernel_size):
        device = get_device("v100")
        small = build_kernel(_conv(out_channels, kernel_size), device)
        big = build_kernel(_conv(out_channels * 2, kernel_size), device)
        assert big.duration_alone_ms(device) >= small.duration_alone_ms(device) - 1e-12


class TestAnalyticLatency:
    def test_estimate_matches_figure2_annotations(self, v100):
        # Paper reports ~0.12 ms and 33% utilisation for conv [a]; our estimate
        # should land in the same neighbourhood (0.10 - 0.20 ms, 20 - 45 %).
        latency = estimate_operator_latency(_conv(384), v100)
        assert 0.10 <= latency.latency_ms <= 0.20
        assert 0.20 <= latency.utilization <= 0.45

    def test_bigger_device_is_faster(self, v100, k80):
        conv = _conv(768)
        assert estimate_operator_latency(conv, v100).latency_ms < estimate_operator_latency(conv, k80).latency_ms

    def test_sequential_estimate_is_sum(self, v100):
        ops = [_conv(384), _conv(768)]
        total = estimate_sequential_latency(ops, v100)
        assert total == pytest.approx(
            sum(estimate_operator_latency(op, v100).latency_ms for op in ops)
        )

    def test_non_kernel_operator_costs_nothing(self, v100):
        op = Identity("i", ["x"])
        op.bind([X])
        assert estimate_operator_latency(op, v100).latency_ms == 0.0

    def test_device_utilization_helper(self, v100):
        assert device_utilization(v100.peak_flops_per_ms, 1.0, v100) == pytest.approx(1.0)
        assert device_utilization(0.0, 1.0, v100) == 0.0
        assert device_utilization(1.0, 0.0, v100) == 0.0

    def test_pooling_is_memory_bound(self, v100):
        pool = Pool2d("p", ["x"], "max", kernel=3, stride=1, padding=1)
        pool.bind([X])
        latency = estimate_operator_latency(pool, v100)
        assert latency.memory_ms > latency.compute_ms
