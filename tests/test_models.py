"""Unit tests for the model zoo."""

from __future__ import annotations

import pytest

from repro.ir import Conv2d, SeparableConv2d, validate_graph
from repro.models import (
    BENCHMARK_MODELS,
    INCEPTION_BLOCK_NAMES,
    MODEL_REGISTRY,
    build_model,
    chain_graph,
    diamond_graph,
    figure2_block,
    figure3_graph,
    figure5_graph,
    list_models,
    parallel_chains_graph,
)
from repro.models.randwire import random_dag_edges


class TestRegistry:
    def test_benchmark_models_registered(self):
        assert set(BENCHMARK_MODELS) <= set(list_models())

    def test_aliases(self):
        assert build_model("InceptionV3").name == "inception_v3"
        assert build_model("nasnet").name == "nasnet_a"
        assert build_model("resnet50").name == "resnet_50"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("transformer_xxl")

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_every_registered_model_builds_and_validates(self, name):
        graph = build_model(name, batch_size=1)
        validate_graph(graph)
        assert graph.total_flops() > 0
        assert len(graph.operators()) >= 4

    def test_batch_size_parameter(self):
        graph = build_model("squeezenet", batch_size=16)
        assert graph.batch_size == 16


class TestToyGraphs:
    def test_figure2_block_matches_paper_workloads(self):
        graph = figure2_block()
        # Conv [a] and [c]: ~0.6 GFLOPs, conv [b] and [d]: ~1.2 GFLOPs.
        assert graph.nodes["conv_a"].flops() / 1e9 == pytest.approx(0.6, rel=0.05)
        assert graph.nodes["conv_b"].flops() / 1e9 == pytest.approx(1.2, rel=0.05)
        # Concat output has 1920 channels as annotated in the figure.
        assert graph.nodes["concat"].output_shape.channels == 1920
        # Dependency structure: b depends on a, c and d depend on the input.
        assert graph.predecessors("conv_b") == ("conv_a",)
        assert graph.predecessors("conv_c") == ("input",)

    def test_figure3_graph_structure(self):
        graph = figure3_graph()
        assert graph.nodes["conv_a"].inputs == graph.nodes["conv_b"].inputs == ("input",)
        assert graph.predecessors("matmul_e") == ("conv_b",)
        assert graph.predecessors("conv_d") == ("conv_c",)

    def test_figure5_graph_structure(self):
        graph = figure5_graph()
        assert graph.predecessors("conv_b") == ("conv_a",)
        assert graph.predecessors("conv_c") == ("input",)

    def test_diamond_and_chain(self):
        assert len(diamond_graph().operators()) == 4
        assert len(chain_graph(length=6).operators()) == 6
        with pytest.raises(ValueError):
            chain_graph(length=0)

    def test_parallel_chains(self):
        graph = parallel_chains_graph(num_chains=3, chain_length=2, join=False)
        assert len(graph.operators()) == 6
        joined = parallel_chains_graph(num_chains=3, chain_length=2, join=True)
        assert len(joined.operators()) == 7
        with pytest.raises(ValueError):
            parallel_chains_graph(num_chains=0)


class TestInceptionV3:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("inception_v3", batch_size=1)

    def test_size_close_to_reference(self, graph):
        # Real Inception V3: ~11.4 GFLOPs (batch 1, 299x299), ~23.8M parameters.
        assert graph.total_flops() / 1e9 == pytest.approx(11.4, rel=0.10)
        assert graph.total_params() / 1e6 == pytest.approx(23.8, rel=0.10)

    def test_eleven_inception_modules(self, graph):
        block_names = [b.name for b in graph.blocks]
        for name in INCEPTION_BLOCK_NAMES:
            assert name in block_names
        assert len(INCEPTION_BLOCK_NAMES) == 11

    def test_operator_count_near_paper(self, graph):
        assert 100 <= len(graph.operators()) <= 140  # paper: 119

    def test_final_block_has_mergeable_branches(self, graph):
        # The 1x3 / 3x1 pairs of the Inception-C block share an input (Figure 10).
        b3a = graph.nodes["mixed_7c_b3_1x3"]
        b3b = graph.nodes["mixed_7c_b3_3x1"]
        assert b3a.inputs == b3b.inputs
        assert b3a.merge_key() == b3b.merge_key()

    def test_spatial_pyramid(self, graph):
        assert graph.nodes["mixed_5b_concat"].output_shape.height == 35
        assert graph.nodes["mixed_6b_concat"].output_shape.height == 17
        assert graph.nodes["mixed_7c_concat"].output_shape.height == 8
        assert graph.nodes["mixed_7c_concat"].output_shape.channels == 2048


class TestSqueezeNet:
    def test_structure(self):
        graph = build_model("squeezenet")
        fire_blocks = [b for b in graph.blocks if b.name.startswith("fire")]
        assert len(fire_blocks) == 8
        assert len(graph.blocks) == 10
        # ~1.7 GFLOPs, ~1.2M parameters for SqueezeNet v1.0 at 224x224.
        assert graph.total_flops() / 1e9 == pytest.approx(1.7, rel=0.15)
        assert graph.total_params() / 1e6 == pytest.approx(1.25, rel=0.15)

    def test_fire_module_expands_share_input(self):
        graph = build_model("squeezenet")
        e1 = graph.nodes["fire5_expand1x1"]
        e3 = graph.nodes["fire5_expand3x3"]
        assert e1.inputs == e3.inputs
        assert e1.merge_key() == e3.merge_key()


class TestRandWire:
    def test_deterministic_wiring(self):
        a = build_model("randwire", seed=1)
        b = build_model("randwire", seed=1)
        assert [op.name for op in a.operators()] == [op.name for op in b.operators()]
        assert a.edges() == b.edges()

    def test_different_seed_changes_wiring(self):
        a = build_model("randwire", seed=1)
        c = build_model("randwire", seed=99)
        assert a.edges() != c.edges()

    def test_three_randomly_wired_stages(self):
        graph = build_model("randwire")
        stage_blocks = [b for b in graph.blocks if b.name.startswith("stage")]
        assert len(stage_blocks) == 3
        assert all(len(b) >= 20 for b in stage_blocks)

    def test_all_nodes_are_sepconv_or_aggregation(self):
        graph = build_model("randwire")
        for name in graph.blocks[1].node_names:  # stage1
            op = graph.nodes[name]
            assert op.kind in ("sep_conv2d", "add")

    def test_random_dag_edges_are_acyclic_by_construction(self):
        edges = random_dag_edges(20, 4, 0.75, seed=3)
        assert all(u < v for u, v in edges)
        with pytest.raises(ValueError):
            random_dag_edges(2, 4, 0.75, seed=3)


class TestNasNet:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_model("nasnet_a", batch_size=1)

    def test_thirteen_cells(self, graph):
        cells = [b for b in graph.blocks if b.name.startswith("cell_")]
        assert len(cells) == 13
        reductions = [b for b in cells if "reduction" in b.name]
        assert len(reductions) == 2

    def test_sep_convs_dominate(self, graph):
        sep_convs = [op for op in graph.operators() if isinstance(op, SeparableConv2d)]
        dense_convs = [op for op in graph.operators() if isinstance(op, Conv2d)]
        assert len(sep_convs) > 60
        assert len(sep_convs) > len(dense_convs)

    def test_no_mergeable_operators_in_cells(self, graph):
        # "Relu-SepConv" units cannot be merged -> IOS-Merge degenerates to
        # Sequential on NasNet (Section 6.1).
        for op in graph.operators():
            if isinstance(op, SeparableConv2d):
                assert op.merge_key() is None


class TestResNetAndClassics:
    def test_resnet50_size(self):
        graph = build_model("resnet_50")
        assert graph.total_flops() / 1e9 == pytest.approx(8.2, rel=0.15)
        assert graph.total_params() / 1e6 == pytest.approx(25.5, rel=0.15)

    def test_resnet_variants_monotone_size(self):
        f18 = build_model("resnet_18").total_flops()
        f34 = build_model("resnet_34").total_flops()
        f50 = build_model("resnet_50").total_flops()
        assert f18 < f34
        assert f34 < f50 * 1.2

    def test_vgg16_is_conv_heavy(self):
        graph = build_model("vgg_16")
        assert graph.total_flops() / 1e9 == pytest.approx(31, rel=0.10)
        assert graph.total_params() / 1e6 == pytest.approx(138, rel=0.10)

    def test_alexnet_builds(self):
        graph = build_model("alexnet")
        assert graph.total_params() / 1e6 == pytest.approx(61, rel=0.15)
