"""Tests for the pass-pipeline ablation experiment (ios-bench ablation-passes)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_passes import run_pass_ablation
from repro.passes import DEFAULT_PASSES


@pytest.fixture(scope="module")
def table():
    # squeezenet keeps the DP searches fast; the CLI sweeps the full
    # inception_v3/nasnet_a pair with identical code.
    return run_pass_ablation(models=("squeezenet",))


class TestPassAblation:
    def test_optimized_graph_has_fewer_operators(self, table):
        raw = next(r for r in table.rows if r["graph"] == "raw")
        opt = next(r for r in table.rows if r["graph"] == "optimized")
        assert opt["operators"] < raw["operators"]

    def test_optimized_latency_is_no_worse(self, table):
        raw = next(r for r in table.rows if r["graph"] == "raw")
        opt = next(r for r in table.rows if r["graph"] == "optimized")
        assert opt["latency_ms"] <= raw["latency_ms"] + 1e-9

    def test_search_effort_is_reduced(self, table):
        raw = next(r for r in table.rows if r["graph"] == "raw")
        opt = next(r for r in table.rows if r["graph"] == "optimized")
        assert opt["transitions"] < raw["transitions"]
        assert opt["search_s"] < raw["search_s"]

    def test_pass_manager_stats_are_reported(self, table):
        pass_rows = [r for r in table.rows if str(r["graph"]).startswith("pass:")]
        assert {r["graph"] for r in pass_rows} == {
            f"pass:{name}" for name in DEFAULT_PASSES
        }
        opt = next(r for r in table.rows if r["graph"] == "optimized")
        assert sum(r["rewrites"] for r in pass_rows) == opt["rewrites"]
        assert all(r["pass_time_s"] >= 0 for r in pass_rows)

    def test_csv_round_trip_carries_the_stats(self, table, tmp_path):
        text = table.to_csv(tmp_path / "ablation_passes.csv")
        assert "pass:fuse-activation" in text
        assert "rewrites" in text.splitlines()[0]

    def test_multiple_models_stack_rows(self):
        table = run_pass_ablation(models=("squeezenet", "figure2_block"))
        assert {r["model"] for r in table.rows} == {"squeezenet", "figure2_block"}
