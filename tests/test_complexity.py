"""Unit tests for schedule-space counting and complexity bounds."""

from __future__ import annotations


import pytest

from repro.core import (
    PruningStrategy,
    block_complexity,
    count_schedules,
    count_transitions_and_states,
    largest_block,
    relaxed_transition_bound,
    transition_upper_bound,
)
from repro.models import (
    build_model,
    chain_graph,
    diamond_graph,
    figure5_graph,
    parallel_chains_graph,
)


class TestBounds:
    def test_paper_table1_bound_values(self):
        # The paper's Table 1 reports ~2.6e4 for Inception (n=11, d=6) and
        # ~3.7e9 for RandWire (n=33, d=8).
        assert transition_upper_bound(11, 6) == pytest.approx(2.6e4, rel=0.1)
        assert transition_upper_bound(33, 8) == pytest.approx(3.7e9, rel=0.1)
        assert transition_upper_bound(18, 8) == pytest.approx(5.2e6, rel=0.1)
        assert transition_upper_bound(6, 3) == pytest.approx(2.2e2, rel=0.1)

    def test_relaxed_bound_is_looser(self):
        for n, d in [(11, 6), (33, 8), (18, 8)]:
            assert relaxed_transition_bound(n, d) >= transition_upper_bound(n, d)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            transition_upper_bound(0, 3)
        with pytest.raises(ValueError):
            relaxed_transition_bound(5, 0)


class TestCounting:
    def test_chain_counts(self):
        graph = chain_graph(length=4)
        names = graph.schedulable_names()
        transitions, states = count_transitions_and_states(graph, names)
        # A chain of n ops has n+1 reachable states (suffixes removed) and
        # n*(n+1)/2 transitions ... here states include the full and empty set.
        assert states == 5
        assert transitions == 4 + 3 + 2 + 1
        # Schedules of a chain = compositions of n = 2^(n-1).
        assert count_schedules(graph, names) == 8

    def test_figure5_counts_match_paper_figure(self):
        graph = figure5_graph()
        names = graph.schedulable_names()
        transitions, states = count_transitions_and_states(graph, names)
        # Figure 5 (2) shows 6 states (including the empty one) and 12 transitions.
        assert states == 6
        assert transitions == 12

    def test_independent_ops_schedule_count(self):
        # d independent single-op chains: schedules = ordered set partitions
        # (Fubini numbers): 2 ops -> 3, 3 ops -> 13.
        two = parallel_chains_graph(2, 1, join=False)
        three = parallel_chains_graph(3, 1, join=False)
        assert count_schedules(two, two.schedulable_names()) == 3
        assert count_schedules(three, three.schedulable_names()) == 13

    def test_diamond_counts(self, diamond):
        names = diamond.schedulable_names()
        transitions, states = count_transitions_and_states(diamond, names)
        assert states >= 4
        assert transitions >= states - 1
        assert count_schedules(diamond, names) >= 4

    def test_pruning_reduces_both_counts(self):
        graph = parallel_chains_graph(3, 2, join=False)
        names = graph.schedulable_names()
        full_t, full_s = count_transitions_and_states(graph, names)
        pruned_t, pruned_s = count_transitions_and_states(
            graph, names, PruningStrategy(max_group_size=1, max_groups=2)
        )
        assert pruned_t < full_t
        assert pruned_s <= full_s
        assert count_schedules(graph, names, PruningStrategy(1, 2)) <= count_schedules(graph, names)

    def test_worst_case_family_meets_bound(self):
        for c, d in [(1, 2), (2, 2), (2, 3)]:
            graph = parallel_chains_graph(d, c, join=False)
            names = graph.schedulable_names()
            transitions, states = count_transitions_and_states(graph, names)
            bound = transition_upper_bound(len(names), d)
            assert transitions + states == pytest.approx(bound)


class TestBlockComplexity:
    def test_largest_block_selection(self):
        graph = build_model("inception_v3")
        block = largest_block(graph)
        sizes = [len(graph.schedulable_names(b)) for b in graph.blocks]
        assert len(graph.schedulable_names(block)) == max(sizes)

    def test_block_complexity_row(self):
        graph = build_model("squeezenet")
        row = block_complexity(graph)
        assert row.network == "squeezenet"
        assert row.num_operators >= 4
        assert row.width >= 2
        assert row.num_transitions > 0
        assert row.num_schedules > 0
        assert row.upper_bound >= row.num_transitions
        assert "n" in row.as_row()

    def test_schedule_count_can_be_skipped(self):
        graph = build_model("squeezenet")
        row = block_complexity(graph, count_schedule_space=False)
        assert row.num_schedules == -1

    def test_schedules_vastly_exceed_transitions_on_wide_blocks(self):
        graph = parallel_chains_graph(4, 3, join=False)
        names = graph.schedulable_names()
        transitions, _ = count_transitions_and_states(graph, names)
        schedules = count_schedules(graph, names)
        assert schedules > 10 * transitions
