#!/usr/bin/env python
"""Schedule a user-defined multi-branch network on a custom accelerator.

The paper argues that the right schedule depends on both the network *and* the
hardware.  This example shows the full workflow a downstream user would follow
for their own model:

1. describe a custom multi-branch block with :class:`repro.ir.GraphBuilder`
   (here: an SSD-style detection head with several parallel prediction
   branches);
2. describe a hypothetical accelerator by tweaking a device preset;
3. compile with :class:`repro.engine.Engine` under different pruning
   strategies and inspect the trade-off between search cost and schedule
   quality (the Figure 9 trade-off, on your own model);
4. export the full compiled artifact to JSON for deployment — a warm start
   (``Engine.load``) rebuilds the executable plan with zero searches.

Run with::

    python examples/custom_network_and_device.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import Engine, GraphBuilder, TensorShape, get_device
from repro.core import PruningStrategy, measure_schedule, sequential_schedule


def build_detection_head(batch_size: int = 1):
    """A multi-branch detection head: shared trunk, four parallel branches."""
    builder = GraphBuilder("detection_head", TensorShape(batch_size, 256, 38, 38))
    x = builder.input_name
    with builder.block("trunk"):
        trunk = builder.conv2d("trunk_conv1", x, out_channels=256, kernel=3)
        trunk = builder.conv2d("trunk_conv2", trunk, out_channels=256, kernel=3)
    with builder.block("heads"):
        cls_branch = builder.conv2d("cls_conv", trunk, out_channels=324, kernel=3)
        box_branch = builder.conv2d("box_conv", trunk, out_channels=216, kernel=3)
        centerness = builder.conv2d("centerness_conv", trunk, out_channels=54, kernel=3)
        context = builder.avg_pool("context_pool", trunk, kernel=3, stride=1, padding=1)
        context = builder.conv2d("context_conv", context, out_channels=128, kernel=1)
        builder.concat("head_concat", [cls_branch, box_branch, centerness, context])
    return builder.build()


def main() -> None:
    graph = build_detection_head()
    print(f"Custom network: {len(graph.operators())} operators, "
          f"{graph.total_flops() / 1e9:.2f} GFLOPs")

    # A hypothetical mid-range accelerator: half the SMs and bandwidth of a V100.
    device = get_device("v100").scaled(
        name="custom-accelerator", num_sms=40, memory_bandwidth_gb_s=450.0, peak_fp32_tflops=7.8
    )
    print(f"Custom device: {device.name} ({device.num_sms} SMs, "
          f"{device.peak_fp32_tflops} TFLOPs/s, {device.memory_bandwidth_gb_s} GB/s)\n")

    sequential = sequential_schedule(graph)
    sequential_latency = measure_schedule(graph, sequential, device).latency_ms
    print(f"{'pruning':<12} {'latency (ms)':>13} {'speedup':>8} {'measurements':>13}")
    print(f"{'sequential':<12} {sequential_latency:>13.3f} {'1.00x':>8} {'-':>13}")

    best = None
    for r, s in [(1, 2), (2, 4), (3, 8)]:
        engine = Engine(device, pruning=PruningStrategy(max_group_size=r, max_groups=s))
        best = engine.compile(graph)
        print(f"{f'r={r}, s={s}':<12} {best.latency_ms():>13.3f} "
              f"{sequential_latency / best.latency_ms():>7.2f}x "
              f"{best.stats.num_measurements:>13d}")

    # Export the full compiled artifact for deployment / inspection; a warm
    # start (Engine.load) rebuilds the executable plan with zero searches.
    output = Path(tempfile.gettempdir()) / "detection_head_ios_compiled.json"
    best.save(output)
    stages = json.loads(output.read_text())["schedule"]["stages"]
    print(f"\nExported the compiled artifact to {output} ({len(stages)} stages)")
    print(best.schedule.describe(graph))


if __name__ == "__main__":
    main()
