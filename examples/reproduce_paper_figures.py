#!/usr/bin/env python
"""Reproduce the paper's headline figures in one script.

Runs the core evaluation of the paper end to end (on the quick model subset so
it finishes in a few minutes) and prints each table:

* Figure 2  — the motivating example with per-stage utilisation;
* Figure 6  — sequential / greedy / IOS-Merge / IOS-Parallel / IOS-Both;
* Figure 7  — cuDNN-based frameworks vs IOS;
* Figure 8  — active warps, sequential vs IOS;
* Table 3   — batch-size specialisation.

For the full four-network suite use the benchmark harness instead::

    IOS_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

Run with::

    python examples/reproduce_paper_figures.py
"""

from __future__ import annotations

from repro.experiments import (
    default_context,
    run_figure2,
    run_figure6,
    run_figure7,
    run_figure8,
    run_table3_batch,
)

QUICK_MODELS = ["inception_v3", "squeezenet"]


def main() -> None:
    # One shared context so the IOS searches are reused across figures.
    context = default_context("v100")
    for title, table in [
        ("Figure 2", run_figure2(context=context)),
        ("Figure 6", run_figure6(models=QUICK_MODELS, context=context)),
        ("Figure 7", run_figure7(models=QUICK_MODELS, context=context)),
        ("Figure 8", run_figure8(context=context)),
        ("Table 3 (1)", run_table3_batch(batch_sizes=(1, 32))),
    ]:
        print(f"\n{'=' * 80}\n{title}\n{'=' * 80}")
        print(table.to_text())


if __name__ == "__main__":
    main()
