#!/usr/bin/env python
"""Quickstart: schedule one CNN with IOS and compare it against the baselines.

This is the 5-minute tour of the library:

1. build a benchmark network (Inception V3) from the model zoo;
2. pick a simulated device (Tesla V100);
3. compute the sequential and greedy baseline schedules;
4. run the IOS dynamic-programming search (Algorithm 1 of the paper);
5. execute all three schedules on the simulated GPU and report latency,
   throughput and the speedups the paper's Figure 6 is about.

Run with::

    python examples/quickstart.py [model] [device]
"""

from __future__ import annotations

import sys

from repro import build_model, get_device, optimize
from repro.core import greedy_schedule, measure_schedule, sequential_schedule


def main(model_name: str = "inception_v3", device_name: str = "v100") -> None:
    device = get_device(device_name)
    graph = build_model(model_name, batch_size=1)
    print(f"Loaded {graph.name}: {len(graph.operators())} operators, "
          f"{graph.total_flops() / 1e9:.2f} GFLOPs, {len(graph.blocks)} blocks")
    print(f"Target device: {device.name} ({device.num_sms} SMs, "
          f"{device.peak_fp32_tflops} TFLOPs/s peak)\n")

    schedules = {
        "sequential": sequential_schedule(graph),
        "greedy": greedy_schedule(graph),
    }
    print("Running the IOS dynamic-programming search (this profiles candidate stages)...")
    schedules["ios"] = optimize(graph, device)

    print(f"\n{'schedule':<12} {'stages':>7} {'latency (ms)':>13} {'images/s':>10} {'speedup':>8}")
    baseline_latency = None
    for name, schedule in schedules.items():
        result = measure_schedule(graph, schedule, device)
        if baseline_latency is None:
            baseline_latency = result.latency_ms
        print(
            f"{name:<12} {schedule.num_stages():>7d} {result.latency_ms:>13.3f} "
            f"{result.throughput():>10.1f} {baseline_latency / result.latency_ms:>7.2f}x"
        )

    ios = schedules["ios"]
    print("\nFirst stages of the IOS schedule:")
    for stage in ios.stages[:8]:
        groups = stage.groups(graph)
        print(f"  [{stage.strategy.value:>20s}] " + " | ".join(",".join(g) for g in groups))
    print("  ...")


if __name__ == "__main__":
    main(*(sys.argv[1:3]))
