#!/usr/bin/env python
"""Specialise IOS schedules for the serving scenario (Table 3 / Figure 11).

Real deployments face two very different regimes: latency-critical edge
serving (batch size 1) and throughput-oriented cloud serving (large batches).
This example shows why one schedule does not fit both:

* it optimises Inception V3 separately for batch sizes 1 and 32,
* cross-executes both schedules at both batch sizes (Table 3 (1)),
* and sweeps the batch size to show how throughput scales and where the
  memory-hungry TASO baseline falls over (Figure 11).

Run with::

    python examples/batch_size_specialization.py
"""

from __future__ import annotations

from repro import build_model, get_device
from repro.core import specialize_for_batch_sizes
from repro.experiments import run_figure11


def cross_execution_matrix() -> None:
    device = get_device("v100")
    graph = build_model("inception_v3", batch_size=1)
    batch_sizes = [1, 32]
    print(f"Optimising {graph.name} separately for batch sizes {batch_sizes} on {device.name}...")
    schedules, matrix = specialize_for_batch_sizes(graph, batch_sizes, device)

    print("\nLatency (ms): rows = executed batch size, columns = schedule optimised for")
    header = "".join(f"{'bs ' + str(bs):>12}" for bs in batch_sizes)
    print(f"{'':>8}{header}")
    for i, bs in enumerate(batch_sizes):
        cells = "".join(f"{matrix.latency_ms[i][j]:>12.3f}" for j in range(len(batch_sizes)))
        print(f"{'bs ' + str(bs):>8}{cells}")
    print(f"\nDiagonal (specialised schedule) is best in every row: {matrix.diagonal_is_best()}")

    for bs, schedule in schedules.items():
        merged = sum(1 for s in schedule.stages if s.strategy.value == "operator merge")
        print(f"  schedule optimised for batch {bs:>3}: {schedule.num_stages()} stages, "
              f"{merged} merge stages")


def throughput_sweep() -> None:
    print("\nThroughput sweep (Figure 11), images/second:")
    table = run_figure11(batch_sizes=(1, 16, 32, 128))
    print(table.to_text())


if __name__ == "__main__":
    cross_execution_matrix()
    throughput_sweep()
