"""Benchmark: reproduce the Section 5 note that ResNets gain only a few percent."""

from conftest import run_once

from repro.experiments import run_resnet_note


def test_resnet_limited_parallelism(benchmark, device_name):
    table = run_once(benchmark, run_resnet_note, device=device_name)
    for row in table.rows:
        # Small but non-negative gain (paper: 2 - 5 %); far below the
        # multi-branch networks of Figure 6.
        assert 0.0 <= row["speedup_percent"] < 20.0
