"""Benchmark: regenerate Figure 15 (Appendix B: framework comparison on RTX 2080Ti)."""

from conftest import run_once

from repro.experiments import run_figure15


def test_figure15_frameworks_on_2080ti(benchmark, models):
    table = run_once(benchmark, run_figure15, models=models)
    for row in table.rows:
        if row["network"] == "geomean":
            continue
        assert row["ios"] == 1.0
        assert row["ios_speedup_vs_best_baseline"] > 1.0
