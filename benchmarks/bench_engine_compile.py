"""Benchmark: cold vs cached engine compiles across the model zoo.

``Engine.compile`` stages passes → DP search → lowering.  Cold compiles pay
for the search; a second compile of the same structure must be a fingerprint
cache hit (no search, no lowering), and a warm start from a persisted
``CompiledModel`` artifact must rebuild an executable model with zero
searches.  These benchmarks record the compile cost per model and assert the
cache/artifact invariants that the serving stack depends on.
"""

from conftest import bench_device, bench_models, run_once

from repro.engine import Engine
from repro.experiments.tables import ExperimentTable
from repro.models import build_model


def _compile_table() -> ExperimentTable:
    """Cold vs cached compile timings, one row per zoo model."""
    device = bench_device()
    table = ExperimentTable(
        experiment_id="engine_compile",
        title=f"Engine compile pipeline on {device}: cold vs cached",
        columns=[
            "model", "operators", "cold_s", "passes_s", "schedule_s", "lower_s",
            "cached_s", "speedup", "latency_ms",
        ],
        notes="'cold' runs the full staged pipeline; 'cached' is the "
        "fingerprint-cache hit the experiments and the serve registry rely on",
    )
    engine = Engine(device, passes=True)
    for model in bench_models():
        graph = build_model(model, optimize=False)
        compiled = engine.compile(graph)
        cold_s = compiled.stats.elapsed_s

        import time

        start = time.perf_counter()
        again = engine.compile(graph)
        cached_s = time.perf_counter() - start
        assert again is compiled, "second compile must be a cache hit"

        table.add_row(
            model=model,
            operators=compiled.stats.operators_out,
            cold_s=cold_s,
            passes_s=compiled.stats.stage_elapsed_s("passes"),
            schedule_s=compiled.stats.stage_elapsed_s("schedule"),
            lower_s=compiled.stats.stage_elapsed_s("lower"),
            cached_s=cached_s,
            speedup=cold_s / cached_s if cached_s > 0 else float("inf"),
            latency_ms=compiled.latency_ms(),
        )
    return table


def test_cold_vs_cached_compile(benchmark):
    table = run_once(benchmark, _compile_table)
    for row in table.rows:
        assert row["cold_s"] > 0
        # The schedule stage dominates a cold compile; a cache hit skips it
        # entirely and must be at least an order of magnitude faster.
        assert row["cached_s"] < row["cold_s"] / 10
        assert row["latency_ms"] > 0


def test_artifact_warm_start_skips_the_search(benchmark, tmp_path_factory):
    """Persisted artifacts rebuild an executable model with zero searches."""
    device = bench_device()
    root = tmp_path_factory.mktemp("artifacts")
    model = bench_models()[0]
    cold_engine = Engine(device)
    compiled = cold_engine.compile(build_model(model, optimize=False))
    path = compiled.save(root / f"{model}.json")

    def warm_start():
        warm = Engine(device)
        loaded = warm.load(path)
        assert warm.stats.searches == 0
        assert loaded.latency_ms() > 0
        return loaded

    loaded = benchmark.pedantic(warm_start, rounds=1, iterations=1)
    assert loaded.schedule == compiled.schedule
