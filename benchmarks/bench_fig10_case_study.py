"""Benchmark: regenerate Figure 10 (batch-specialised schedules of the last Inception block)."""

from conftest import run_once

from repro.experiments import run_figure10


def test_figure10_case_study(benchmark, device_name):
    table = run_once(benchmark, run_figure10, batch_sizes=(1, 32), device=device_name)
    small = table.row_by("optimized_for_batch", 1)
    large = table.row_by("optimized_for_batch", 32)
    # Each schedule wins on the batch size it was optimised for.
    assert small["latency_on_bs1_ms"] <= large["latency_on_bs1_ms"] + 1e-9
    assert large["latency_on_bs32_ms"] <= small["latency_on_bs32_ms"] + 1e-9
