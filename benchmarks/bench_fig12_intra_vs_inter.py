"""Benchmark: regenerate Figure 12 (TVM-AutoTune vs IOS, plus optimisation cost)."""

from conftest import run_once

from repro.experiments import run_figure12


def test_figure12_intra_vs_inter(benchmark, models, device_name):
    table = run_once(benchmark, run_figure12, models=models, device=device_name)
    totals = table.row_by("network", "geomean/total")
    # IOS's profiling cost is orders of magnitude below TVM's auto-tuning cost.
    assert totals["ios_optimization_gpu_hours"] < 0.05 * totals["tvm_optimization_gpu_hours"]
    # IOS wins on the dense-convolution networks (Inception V3, SqueezeNet).
    for network in ("inception_v3", "squeezenet"):
        if any(row["network"] == network for row in table.rows):
            row = table.row_by("network", network)
            assert row["ios"] >= row["tvm-autotune"]
