"""Benchmark: regenerate Figure 8 (active warps, sequential vs IOS)."""

from conftest import run_once

from repro.experiments import run_figure8


def test_figure8_active_warps(benchmark, device_name):
    table = run_once(benchmark, run_figure8, device=device_name)
    ios = table.row_by("schedule", "ios-both")
    seq = table.row_by("schedule", "sequential")
    # Paper: IOS keeps ~1.58x more warps active than the sequential schedule.
    assert ios["active_warp_ratio_vs_sequential"] > 1.2
    assert ios["avg_active_warps"] > seq["avg_active_warps"]
    assert ios["latency_ms"] < seq["latency_ms"]
