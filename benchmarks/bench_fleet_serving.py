"""Benchmark: heterogeneous fleet serving vs homogeneous fleets.

Serves one seeded overload workload through ``run_fleet_comparison``: a mixed
``k80 + v100`` fleet against homogeneous fleets of each member type at equal
worker count, routed by the device-aware earliest-finish policy.  The mixed
fleet must land between the homogeneous extremes — strictly faster than
all-k80 (its fast members absorb more load) and no faster than all-v100 —
and the per-device-group utilisation must show both groups engaged under
overload.

A second stage compiles the served model through the per-device engine
fan-out (:func:`repro.engine.get_engines`) to report the latency asymmetry
the router exploits.
"""

from conftest import full_run, run_once

from repro.engine import get_engines
from repro.models import build_model
from repro.serve import FleetSpec, run_fleet_comparison

FLEET = "k80:2,v100:2"
LADDER = (1, 2, 4, 8)


def _by_fleet(table, pattern):
    return {row["fleet"]: row for row in table.rows if row["pattern"] == pattern}


def test_fleet_serving_overloaded(benchmark, device_name):
    num_requests = 600 if full_run() else 200
    table = run_once(
        benchmark, run_fleet_comparison,
        model="squeezenet", fleet=FLEET, num_requests=num_requests,
        rate_rps=4000.0, batch_sizes=LADDER, max_wait_ms=3.0,
        patterns=("poisson",), seed=11,
    )
    rows = _by_fleet(table, "poisson")
    mixed, slow, fast = rows[FLEET], rows["k80:4"], rows["v100:4"]
    # Heterogeneity pays: the mixed fleet beats the slow homogeneous fleet...
    assert mixed["throughput_rps"] > slow["throughput_rps"]
    # ...and cannot beat replacing its slow members with fast ones.
    assert mixed["throughput_rps"] <= fast["throughput_rps"] * 1.001
    # Equal worker counts everywhere, so the comparison isolates device mix.
    assert FleetSpec.parse(FLEET).num_workers == 4


def test_fleet_latency_asymmetry_is_what_routing_exploits(benchmark):
    """The per-device compile fan-out shows why earliest-finish routes off k80."""
    def fan_out():
        engines = get_engines(FleetSpec.parse(FLEET))
        graph = build_model("squeezenet", batch_size=4)
        return {name: engine.compile(graph).latency_ms()
                for name, engine in engines.items()}

    latencies = benchmark.pedantic(fan_out, rounds=1, iterations=1)
    print(f"\nper-device latency fan-out: {latencies}")
    assert set(latencies) == {"k80", "v100"}
    assert latencies["k80"] > latencies["v100"]
