"""Ablation benchmark: block-wise DP vs whole-graph DP."""

from conftest import run_once

from repro.experiments import run_blockwise_ablation


def test_ablation_blockwise(benchmark, device_name):
    table = run_once(benchmark, run_blockwise_ablation, device=device_name)
    for row in table.rows:
        # Whole-graph search can explore cross-block stages, so it is at most
        # marginally better, while it visits at least as many transitions.
        assert row["whole_graph_ms"] <= row["blockwise_ms"] * 1.05
        assert row["whole_graph_transitions"] >= row["blockwise_transitions"]
