"""Benchmark: regenerate Figure 6 (schedule comparison, batch 1, V100)."""

from conftest import run_once

from repro.experiments import run_figure6


def test_figure6_schedule_comparison(benchmark, models, device_name):
    table = run_once(benchmark, run_figure6, device=device_name, models=models)
    for row in table.rows:
        if row["network"] == "geomean":
            continue
        # IOS-Both is the best schedule (normalised throughput 1.0) on every
        # network and strictly beats the sequential schedule.
        assert row["ios-both"] == 1.0
        assert row["sequential"] < 1.0
        assert row["ios-parallel"] <= 1.0 + 1e-9
        assert row["ios_speedup_vs_sequential"] > 1.05
