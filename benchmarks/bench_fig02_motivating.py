"""Benchmark: regenerate Figure 2 (sequential vs greedy vs IOS on the toy block)."""

from conftest import run_once

from repro.experiments import run_figure2
from repro.experiments.fig02_motivating import summarize_figure2


def test_figure2_motivating_example(benchmark, device_name):
    table = run_once(benchmark, run_figure2, device=device_name)
    summary = summarize_figure2(table)
    # Paper: sequential 0.48 ms / 48% util, greedy 0.37 ms / 62%, IOS 0.33 ms / 70%.
    assert summary["ios-both"]["total_latency_ms"] < summary["greedy"]["total_latency_ms"]
    assert summary["greedy"]["total_latency_ms"] < summary["sequential"]["total_latency_ms"]
    assert summary["ios-both"]["avg_utilization"] > summary["greedy"]["avg_utilization"]
    assert summary["greedy"]["avg_utilization"] > summary["sequential"]["avg_utilization"]
