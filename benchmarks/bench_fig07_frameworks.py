"""Benchmark: regenerate Figure 7 (framework comparison, batch 1, V100)."""

from conftest import run_once

from repro.experiments import run_figure7


def test_figure7_framework_comparison(benchmark, models, device_name):
    table = run_once(benchmark, run_figure7, device=device_name, models=models)
    for row in table.rows:
        if row["network"] == "geomean":
            continue
        # IOS is the best system on every network (paper: 1.1 - 1.5x over the
        # best cuDNN-based baseline) and TensorFlow is the slowest baseline.
        assert row["ios"] == 1.0
        assert row["ios_speedup_vs_best_baseline"] > 1.05
        assert row["tensorflow"] <= min(row["tensorrt"], row["taso"]) + 1e-9
