"""Benchmark: SLO-aware serving — deadline admission vs admit-all under overload.

Serves one seeded bursty-overload workload (every request carrying a latency
budget) through ``run_slo_comparison`` on an elastic single-K80 pool.  The
acceptance bar of the SLO PR, asserted here:

* **deadline-aware admission strictly beats admit-all on SLO attainment** —
  shedding requests that are predicted to miss keeps the queue short enough
  for the admitted ones to finish in time, while admit-all lets the backlog
  snowball and the tail blow through every deadline;
* the deadline row's **p99 latency** stays an order of magnitude tighter;
* the **autoscaler resizes the pool at least once** during the scenario
  (the bursts push the backlog over the scale-up watermark).

A second stage serves a priority-mixed workload through the
priority-preemptive policy and asserts the class differentiation: the high
class attains more of its SLOs than the low class it jumps over.
"""

from conftest import fast_run, full_run, run_once

from repro.serve import (
    AutoscaleConfig,
    BatchPolicy,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
    run_slo_comparison,
)

MODEL = "squeezenet"
DEVICE = "k80"
LADDER = (1, 2, 4, 8)
SLO_MS = 20.0
AUTOSCALE = AutoscaleConfig(min_workers=1, max_workers=3, scale_up_backlog_ms=5.0)


def _rows_by_admission(table):
    return {row["admission"]: row for row in table.rows}


def test_deadline_admission_beats_admit_all_under_bursty_overload(benchmark):
    num_requests = 640 if full_run() else (160 if fast_run() else 320)
    table = run_once(
        benchmark,
        run_slo_comparison,
        model=MODEL,
        device=DEVICE,
        num_workers=1,
        slo_ms=SLO_MS,
        admissions=("admit-all", "deadline"),
        autoscale=AUTOSCALE,
        num_requests=num_requests,
        burst_size=64,
        burst_gap_ms=30.0,
        batch_sizes=LADDER,
        max_wait_ms=2.0,
        seed=0,
    )
    rows = _rows_by_admission(table)
    admit_all, deadline = rows["admit-all"], rows["deadline"]

    # Load shedding pays: strictly higher SLO attainment than admit-all,
    # even though every rejected request counts as a miss.
    assert deadline["attainment"] > admit_all["attainment"]
    # The tail is where admit-all dies: its backlog snowballs across bursts.
    assert deadline["p99_ms"] < admit_all["p99_ms"]
    # Shedding actually happened (this is an overload scenario)...
    assert deadline["rejected"] > 0
    # ...and the elastic pool actually resized during the scenario.
    assert admit_all["scale_events"] + deadline["scale_events"] > 0
    assert max(admit_all["peak_workers"], deadline["peak_workers"]) > 1


def test_priority_admission_protects_the_high_class(benchmark):
    num_requests = 640 if full_run() else (160 if fast_run() else 320)
    traffic = TrafficConfig(
        model=MODEL,
        pattern="bursty",
        num_requests=num_requests,
        burst_size=64,
        burst_gap_ms=30.0,
        slo_ms=SLO_MS,
        priorities=(0, 1),
        priority_weights=(0.7, 0.3),
        seed=5,
    ).capped_to(max(LADDER))

    def serve():
        config = ServingConfig(
            model=MODEL,
            devices=(DEVICE,),
            batch_sizes=LADDER,
            policy=BatchPolicy(max_batch_size=max(LADDER), max_wait_ms=2.0),
            admission="priority",
        )
        service = InferenceService(config, registry=ScheduleRegistry())
        return service.run(TrafficGenerator(traffic).generate())

    report = benchmark.pedantic(serve, rounds=1, iterations=1)
    slo = report.slo_summary
    print()
    print(slo.describe())
    by_priority = {row.priority: row for row in slo.per_priority}
    high, low = by_priority[1], by_priority[0]
    # The policy differentiates: the high class attains more of its SLOs...
    assert high.attainment > low.attainment
    # ...and sheds proportionally less of its traffic than the low class.
    assert high.rejected / high.offered < low.rejected / low.offered
