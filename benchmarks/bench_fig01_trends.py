"""Benchmark: regenerate Figure 1 (hardware vs per-convolution work trends)."""

from conftest import run_once

from repro.experiments import run_figure1


def test_figure1_trends(benchmark):
    table = run_once(benchmark, run_figure1)
    rows = table.rows
    # Shape check: per-convolution work shrinks while peak performance grows.
    assert rows[0]["avg_mflops_per_conv"] > rows[-1]["avg_mflops_per_conv"]
    assert rows[0]["device_peak_gflops"] < rows[-1]["device_peak_gflops"]
