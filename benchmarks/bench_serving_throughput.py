"""Benchmark: serving throughput of the dynamic batcher vs. no batching.

Serves an overloaded synthetic workload through the ``repro.serve`` pipeline
(batcher → schedule registry → simulated worker pool) twice — once with
dynamic batching onto batch-size-specialised schedules, once executing every
request by itself — and prints requests/sec and p50/p95 latency for both.
Under overload, batching onto specialised schedules must win throughput.
"""

from conftest import full_run, run_once

from repro.serve import run_serving_comparison


def _rows(table, pattern):
    by = {(row["pattern"], row["policy"]): row for row in table.rows}
    return by[(pattern, "dynamic")], by[(pattern, "unbatched")]


def test_serving_throughput_overloaded(benchmark, device_name):
    num_requests = 1000 if full_run() else 300
    table = run_once(
        benchmark, run_serving_comparison,
        model="squeezenet", device=device_name, num_workers=1,
        num_requests=num_requests, rate_rps=3000.0, max_wait_ms=3.0,
        patterns=("poisson", "bursty"), burst_size=32, burst_gap_ms=5.0,
    )
    for pattern in ("poisson", "bursty"):
        dynamic, unbatched = _rows(table, pattern)
        # Overload: arrivals outpace per-request execution, so batching onto
        # specialised schedules must deliver strictly higher throughput...
        assert dynamic["throughput_rps"] > 1.2 * unbatched["throughput_rps"]
        # ...and it does so with far fewer device launches.
        assert dynamic["batches"] < unbatched["batches"]
    # The registry is shared across all four runs: one search per ladder rung
    # (plus the unbatched single-sample rung), never one per run.
    assert table.rows[-1]["searches"] == table.rows[0]["searches"]


def test_serving_latency_light_load(benchmark, device_name):
    """Light load: batching must not blow up tail latency beyond the wait bound."""
    table = run_once(
        benchmark, run_serving_comparison,
        model="squeezenet", device=device_name, num_workers=2,
        num_requests=200 if not full_run() else 500, rate_rps=100.0,
        max_wait_ms=2.0, patterns=("poisson",),
    )
    dynamic, unbatched = _rows(table, "poisson")
    # The p95 penalty of waiting for batches is bounded by the policy knob
    # plus one batch execution.
    assert dynamic["p95_ms"] <= unbatched["p95_ms"] + 2.0 + dynamic["p50_ms"] + 1.0
