"""Benchmark: live observability — alerting lead time and sampling budgets.

Drives the observability PR's acceptance scenario end-to-end and asserts its
two promises:

* **The burn-rate alert leads the report.**  On the bursty-overload scenario
  from ``bench_slo_serving`` (squeezenet on an elastic single-K80 pool,
  deadline admission), the final report's SLO attainment lands below the 95%
  target — and the ``slo-burn-rate`` rule fires at a window close *inside*
  the run, long before that report exists.
* **Tail sampling holds its budget without losing the tail.**  A large
  seeded bursty replay (hundreds of thousands of trace events in the default
  configuration, ~a million under ``IOS_BENCH_FULL=1``) recorded through a
  :class:`~repro.obs.SamplingTracer` keeps the peak of retained request
  records at or under the span budget while retaining **100%** of the
  SLO-missed request lifecycles, and the sampled trace still passes the
  exporter's schema validation.
"""

from conftest import fast_run, full_run

from repro.obs import (
    SamplingConfig,
    SamplingTracer,
    default_alert_rules,
    validate_chrome_trace,
)
from repro.obs.export import chrome_trace
from repro.serve import (
    AutoscaleConfig,
    BatchPolicy,
    InferenceService,
    ScheduleRegistry,
    ServingConfig,
    TrafficConfig,
    TrafficGenerator,
)

MODEL = "squeezenet"
DEVICE = "k80"
LADDER = (1, 2, 4, 8)
SLO_MS = 20.0
WINDOW_MS = 20.0
AUTOSCALE = AutoscaleConfig(min_workers=1, max_workers=3, scale_up_backlog_ms=5.0)


def _traffic(num_requests: int, seed: int = 0) -> TrafficConfig:
    return TrafficConfig(
        model=MODEL,
        pattern="bursty",
        num_requests=num_requests,
        rate_rps=2000.0,
        burst_size=64,
        burst_gap_ms=30.0,
        slo_ms=SLO_MS,
        seed=seed,
    ).capped_to(max(LADDER))


def _service(**overrides) -> InferenceService:
    config = ServingConfig(
        model=MODEL,
        devices=(DEVICE,),
        batch_sizes=LADDER,
        policy=BatchPolicy(max_batch_size=max(LADDER), max_wait_ms=2.0),
        admission="deadline",
        autoscale=AUTOSCALE,
    )
    return InferenceService(config, registry=ScheduleRegistry(), **overrides)


def test_burn_rate_alert_leads_the_final_report(benchmark):
    num_requests = 640 if full_run() else (160 if fast_run() else 320)

    def serve():
        service = _service(
            alerts=default_alert_rules(slo_ms=SLO_MS), window_ms=WINDOW_MS
        )
        return service.run(TrafficGenerator(_traffic(num_requests)).generate())

    report = benchmark.pedantic(serve, rounds=1, iterations=1)
    print()
    print(report.describe())
    slo = report.slo_summary

    # The scenario really is overloaded: the report lands below target.
    assert slo.attainment_rate < 0.95
    firing = [
        event for event in report.alerts
        if event.rule == "slo-burn-rate" and event.state == "firing"
    ]
    assert firing, "the burn-rate rule must fire on the overload scenario"
    # The alert leads: it fired at a window close inside the run, before the
    # final report's attainment number existed.
    assert firing[0].time_ms < report.makespan_ms
    # A firing alert pre-empts the backlog watermark: the pool grew.
    assert any(event.action == "up" for event in report.scale_events)


def test_tail_sampling_holds_budget_and_keeps_every_slo_miss(benchmark):
    # ~12 trace events per request: the full run replays ~a million events.
    num_requests = 80_000 if full_run() else (2_000 if fast_run() else 8_000)
    # Well under the ~2 records/request the run emits, but above the
    # enforceable floor: deadline admission makes most of this overload
    # traffic a must-keep (rejections + SLO misses are never evicted), and
    # still-open lifecycles cannot be shed before their outcome is known.
    budget = (num_requests * 5) // 4

    def serve():
        tracer = SamplingTracer(
            SamplingConfig(max_records=budget, head_every=100, track_budget=2_000)
        )
        service = _service(tracer=tracer)
        report = service.run(TrafficGenerator(_traffic(num_requests)).generate())
        return tracer, report

    tracer, report = benchmark.pedantic(serve, rounds=1, iterations=1)
    meta = tracer.sampling_metadata()
    print()
    print(f"sampling: {meta}")

    requests, records = meta["requests"], meta["records"]
    # The budget held at its peak, not just at the end of the run...
    assert records["peak_request_records"] <= budget
    # ...while it really did bind (discretionary lifecycles were shed)...
    assert requests["dropped"] > 0
    # ...and no SLO-missed request was lost: every violation in the final
    # report has its full lifecycle in the sampled trace.
    assert report.slo_summary.violations > 0
    assert requests["slo_miss_kept"] == report.slo_summary.violations
    assert requests["rejected_kept"] == report.slo_summary.rejected

    document = chrome_trace(tracer)
    assert validate_chrome_trace(document) == []
    assert document["otherData"]["sampling"] == meta
