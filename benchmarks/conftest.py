"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper by calling the
corresponding ``repro.experiments.run_*`` function exactly once (``rounds=1``:
the experiments are deterministic simulations, so statistical repetition adds
nothing) and prints the resulting table so that ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction report.

Environment variables
---------------------
``IOS_BENCH_FULL=1``
    Run the heavy experiments on the full four-network benchmark suite
    (Inception V3, RandWire, NasNet-A, SqueezeNet) and the full batch-size /
    pruning grids.  The default "quick" configuration restricts the heaviest
    searches (RandWire / NasNet-A take tens of minutes of DP search each) so
    that the whole suite finishes in a few minutes while preserving every
    qualitative conclusion; EXPERIMENTS.md records a full run.
``REPRO_BENCH_FAST=1``
    The opposite direction: a smoke mode for CI.  Heavy experiments run on
    SqueezeNet only, so the whole suite stays well under five minutes while
    every benchmark file is still imported, executed and asserted on.
    ``IOS_BENCH_FULL`` wins when both are set.
``IOS_BENCH_DEVICE``
    Device preset to use (default ``v100``).
"""

from __future__ import annotations

import os

import pytest

#: Networks used by the heavy experiments in quick mode.
QUICK_MODELS = ["inception_v3", "squeezenet"]
#: The single fastest network — what CI's smoke mode runs on.
FAST_MODELS = ["squeezenet"]
#: The paper's full benchmark suite.
FULL_MODELS = ["inception_v3", "randwire", "nasnet_a", "squeezenet"]

_FALSY = ("", "0", "false", "no")


def full_run() -> bool:
    return os.environ.get("IOS_BENCH_FULL", "0") not in _FALSY


def fast_run() -> bool:
    """Whether the CI smoke mode is on (and not overridden by a full run)."""
    return (
        os.environ.get("REPRO_BENCH_FAST", "0") not in _FALSY and not full_run()
    )


def bench_models() -> list[str]:
    override = os.environ.get("IOS_BENCH_MODELS")
    if override:
        return [name.strip() for name in override.split(",") if name.strip()]
    if full_run():
        return FULL_MODELS
    return FAST_MODELS if fast_run() else QUICK_MODELS


def bench_device() -> str:
    return os.environ.get("IOS_BENCH_DEVICE", "v100")


@pytest.fixture(scope="session")
def models():
    return bench_models()


@pytest.fixture(scope="session")
def device_name():
    return bench_device()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and print it."""
    table = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(table.to_text())
    return table
