"""Benchmark: cluster serving — scale-out vs scale-up, partition vs placement.

Drives the cluster PR's acceptance scenarios end-to-end through
:func:`repro.cluster.run_cluster_serving` and asserts its two promises:

* **Scale-out beats scale-up at equal total capacity.**  Four 1-K80 hosts
  and one 4-K80 host have identical compute, but the single host funnels
  every request through one ingress NIC.  Under a seeded bursty overload the
  NIC serialises each burst into a queue the SLO cannot absorb; four hosts
  spread the same deliveries over four NICs and keep attainment strictly —
  in fact dramatically — higher.
* **Partitioning beats whole-model placement when memory binds.**  With
  per-host weight-memory bounds only host 0 can hold the whole model, so
  whole-model placement serves the cluster on a quarter of its silicon.
  Cutting the model into four pipeline stages (each stage fitting its small
  host) uses all four hosts concurrently; even though every hop pays a
  modeled link transfer, pipeline parallelism wins the overload decisively.

Both scenarios print the per-host rows so the report shows *where* requests
ran, and both are asserted on cluster-wide end-to-end SLO attainment — the
metric the client actually experiences.
"""

from conftest import fast_run, full_run

from repro.cluster import ClusterConfig, LinkModel, run_cluster_serving
from repro.serve import BatchPolicy, ServingConfig, TrafficConfig

MODEL = "squeezenet"
DEVICE = "k80"
LADDER = (1, 2, 4, 8)
#: Each host's client-facing NIC: 0.5 GB/s ≈ 1.2 ms per squeezenet sample.
LINK = LinkModel(ingress_gb_s=0.5)


def _num_requests() -> int:
    return 480 if full_run() else (120 if fast_run() else 240)


def _traffic(slo_ms: float, burst_size: int = 48) -> TrafficConfig:
    return TrafficConfig(
        model=MODEL,
        pattern="bursty",
        num_requests=_num_requests(),
        rate_rps=400.0,
        burst_size=burst_size,
        burst_gap_ms=40.0,
        slo_ms=slo_ms,
        seed=11,
    ).capped_to(max(LADDER))


def _serving(num_devices: int = 1) -> ServingConfig:
    return ServingConfig(
        model=MODEL,
        devices=(DEVICE,) * num_devices,
        batch_sizes=LADDER,
        policy=BatchPolicy(max_batch_size=max(LADDER), max_wait_ms=2.0),
    )


def test_scale_out_beats_scale_up_at_equal_capacity(benchmark):
    """4 × (k80:1 + NIC) strictly beats 1 × (k80:4 + NIC) on attainment."""
    traffic = _traffic(slo_ms=30.0)

    def serve():
        scale_out = run_cluster_serving(
            traffic,
            ClusterConfig(serving=_serving(1), num_hosts=4, link=LINK),
        )
        scale_up = run_cluster_serving(
            traffic,
            ClusterConfig(serving=_serving(4), num_hosts=1, link=LINK),
        )
        return scale_out, scale_up

    scale_out, scale_up = benchmark.pedantic(serve, rounds=1, iterations=1)
    print()
    print("--- scale-out: 4 hosts x k80:1 ---")
    print(scale_out.describe())
    print("--- scale-up: 1 host x k80:4 ---")
    print(scale_up.describe())

    # Same silicon, four NICs vs one: the cluster strictly wins the SLO.
    assert scale_out.attainment > scale_up.attainment
    # Every host in the scale-out cluster actually took traffic.
    assert set(scale_out.routed) == {0, 1, 2, 3}
    # The single host's one NIC serialised every burst into its backlog.
    assert scale_up.report.latency.p99_ms > scale_out.report.latency.p99_ms


def test_partitioning_beats_whole_model_placement_when_memory_binds(benchmark):
    """A partitioned pipeline outserves one memory-eligible host."""
    traffic = _traffic(slo_ms=40.0, burst_size=32)
    # Host 0 can hold the whole model (~5 MB of weights); hosts 1-3 cannot,
    # but every pipeline stage fits its host.
    bounds = (0.006, 0.004, 0.004, 0.004)

    def serve():
        whole = run_cluster_serving(
            traffic,
            ClusterConfig(
                serving=_serving(1), num_hosts=4, host_memory_gb=bounds
            ),
        )
        partitioned = run_cluster_serving(
            traffic,
            ClusterConfig(
                serving=_serving(1),
                num_hosts=4,
                host_memory_gb=bounds,
                partition=True,
                router="partition-affinity",
            ),
        )
        return whole, partitioned

    whole, partitioned = benchmark.pedantic(serve, rounds=1, iterations=1)
    print()
    print("--- whole-model placement (only host 0 fits) ---")
    print(whole.describe())
    print("--- partitioned pipeline (one stage per host) ---")
    print(partitioned.describe())

    # Memory eligibility forced everything onto host 0...
    assert set(whole.routed) == {0}
    # ...while the partitioned pipeline spread the weights under each bound
    # and paid real modeled transfers on every stage handoff...
    assert partitioned.plan is not None
    stages = partitioned.plan.stages
    assert all(
        stage.weight_bytes <= bound * 1e9
        for stage, bound in zip(stages, bounds)
    )
    assert partitioned.transfers.count == traffic.num_requests * (
        len(stages) - 1
    )
    assert partitioned.transfers.total_ms > 0
    # ...and still decisively won the overload on end-to-end attainment.
    assert partitioned.attainment > whole.attainment
    assert partitioned.report.latency.p99_ms < whole.report.latency.p99_ms
