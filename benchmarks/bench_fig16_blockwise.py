"""Benchmark: regenerate Figure 16 (Appendix C: block-wise speedup on Inception V3)."""

from conftest import run_once

from repro.experiments import run_figure16


def test_figure16_blockwise_speedup(benchmark, device_name):
    table = run_once(benchmark, run_figure16, device=device_name)
    block_rows = [row for row in table.rows if row["block"] != "all_blocks_total"]
    assert len(block_rows) == 11
    # Every Inception module gets faster under IOS; the end-to-end speedup over
    # all modules is substantial (paper: up to 2.3x per block, 1.6x end to end).
    assert all(row["speedup"] >= 1.0 - 1e-9 for row in block_rows)
    total = table.row_by("block", "all_blocks_total")
    assert total["speedup"] > 1.2
    # Later (wider) blocks speed up more than the early ones on average.
    early = [row["speedup"] for row in block_rows[:3]]
    late = [row["speedup"] for row in block_rows[-3:]]
    assert max(late) >= max(early)
