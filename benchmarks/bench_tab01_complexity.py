"""Benchmark: regenerate Table 1 (schedule-space statistics of the largest block)."""

from conftest import run_once

from repro.experiments import run_table1


def test_table1_complexity(benchmark, models):
    # Counting the unpruned schedule space of the RandWire block is itself a
    # minutes-long exact enumeration; quick mode restricts the networks.
    table = run_once(benchmark, run_table1, models=models)
    for row in table.rows:
        assert row["transitions"] <= row["transition_bound"]
        # The DP explores exponentially fewer states than there are schedules.
        assert row["num_schedules"] >= row["transitions"]
