"""Benchmark: regenerate Figure 9 (latency vs optimisation cost under (r, s) pruning)."""

from conftest import full_run, run_once

from repro.experiments import run_figure9


def test_figure9_pruning_tradeoff(benchmark, device_name):
    # The paper sweeps Inception V3 and NasNet; NasNet's six searches take tens
    # of minutes of DP, so quick mode sweeps Inception V3 only.
    models = ("inception_v3", "nasnet_a") if full_run() else ("inception_v3",)
    table = run_once(benchmark, run_figure9, models=models, device=device_name)
    for model in models:
        rows = [row for row in table.rows if row["network"] == model]
        loosest = next(row for row in rows if row["r"] == 3 and row["s"] == 8)
        tightest = next(row for row in rows if row["r"] == 1 and row["s"] == 3)
        # Tighter pruning cannot find a better schedule but searches less.
        assert tightest["latency_ms"] >= loosest["latency_ms"] - 1e-9
        assert tightest["stage_measurements"] <= loosest["stage_measurements"]
        # Even the most restrictive pruning still beats the sequential schedule.
        assert tightest["speedup_vs_sequential"] > 1.05
