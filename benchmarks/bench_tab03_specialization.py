"""Benchmark: regenerate Table 3 (batch-size and device specialisation)."""

from conftest import full_run, run_once

from repro.experiments import run_table3_batch, run_table3_device


def test_table3_batch_specialization(benchmark, device_name):
    batch_sizes = (1, 32, 128) if full_run() else (1, 32)
    table = run_once(
        benchmark, run_table3_batch, model="inception_v3", batch_sizes=batch_sizes,
        device=device_name,
    )
    # Each row's best entry must be the schedule specialised for that batch size.
    assert all(row["diagonal_is_best"] for row in table.rows)


def test_table3_device_specialization(benchmark):
    table = run_once(benchmark, run_table3_device, model="inception_v3", devices=("k80", "v100"))
    assert all(row["diagonal_is_best"] for row in table.rows)
    k80_row = table.row_by("execute_on", "k80")
    v100_row = table.row_by("execute_on", "v100")
    # The V100 is several times faster than the K80 under every schedule.
    assert k80_row["optimized_for_k80"] > 2 * v100_row["optimized_for_v100"]
