"""Benchmark: regenerate Figure 14 (Appendix B: schedule comparison on RTX 2080Ti)."""

from conftest import run_once

from repro.experiments import run_figure14


def test_figure14_schedules_on_2080ti(benchmark, models):
    table = run_once(benchmark, run_figure14, models=models)
    for row in table.rows:
        if row["network"] == "geomean":
            continue
        assert row["ios-both"] == 1.0
        assert row["ios_speedup_vs_sequential"] > 1.05
