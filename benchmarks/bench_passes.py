"""Benchmark: the graph-rewriting pass pipeline ablation (ios-bench ablation-passes).

For each model, schedules the raw (unfused frontend) graph and the
pass-optimised graph and compares operator count, scheduled latency and DP
search effort.  The optimised graph must have strictly fewer schedulable
operators, no-worse latency, and a cheaper search — that is the whole point
of running a compiler stage before placement.
"""

from conftest import full_run, run_once

from repro.experiments import run_pass_ablation


def test_pass_ablation(benchmark, device_name):
    # Quick mode keeps the raw-graph DP searches in check; the full run sweeps
    # the acceptance pair (Conv-Relu heavy and Relu-SepConv heavy networks).
    models = ("inception_v3", "nasnet_a") if full_run() else ("inception_v3", "squeezenet")
    table = run_once(benchmark, run_pass_ablation, models=models, device=device_name)
    for model in models:
        rows = [r for r in table.rows if r["model"] == model]
        raw = next(r for r in rows if r["graph"] == "raw")
        opt = next(r for r in rows if r["graph"] == "optimized")
        assert opt["operators"] < raw["operators"]
        assert opt["latency_ms"] <= raw["latency_ms"] + 1e-9
        assert opt["search_s"] < raw["search_s"]
        assert opt["transitions"] < raw["transitions"]
        assert opt["rewrites"] > 0
        # The per-pass breakdown is part of the report.
        assert any(str(r["graph"]).startswith("pass:") for r in rows)


def test_pipeline_cost_is_negligible(benchmark, device_name):
    """The rewrite pipeline itself must be orders cheaper than the search it saves."""
    table = run_once(benchmark, run_pass_ablation, models=("squeezenet",),
                     device=device_name)
    raw = next(r for r in table.rows if r["graph"] == "raw")
    opt = next(r for r in table.rows if r["graph"] == "optimized")
    saved = raw["search_s"] - opt["search_s"]
    assert opt["pass_time_s"] < max(saved, 1e-9) or opt["pass_time_s"] < 0.05
