"""Ablation benchmark: contention-aware cost model vs naive FLOPs cost model."""

from conftest import run_once

from repro.experiments import run_cost_model_ablation


def test_ablation_cost_model(benchmark, device_name):
    table = run_once(benchmark, run_cost_model_ablation, device=device_name)
    for row in table.rows:
        # Searching with the naive cost model can never beat searching with the
        # simulator the schedules are evaluated on.
        assert row["flops_cost_model_ms"] >= row["simulated_cost_model_ms"] - 1e-9
