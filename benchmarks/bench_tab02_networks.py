"""Benchmark: regenerate Table 2 (the CNN benchmark suite)."""

from conftest import run_once

from repro.experiments import run_table2
from repro.models import BENCHMARK_MODELS


def test_table2_networks(benchmark):
    table = run_once(benchmark, run_table2, models=BENCHMARK_MODELS)
    assert len(table.rows) == 4
    nasnet = table.row_by("network", "nasnet_a")
    squeezenet = table.row_by("network", "squeezenet")
    assert nasnet["num_operators"] > squeezenet["num_operators"]
