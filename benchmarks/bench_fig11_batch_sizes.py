"""Benchmark: regenerate Figure 11 (throughput vs batch size on Inception V3)."""

from conftest import full_run, run_once

from repro.experiments import run_figure11


def test_figure11_batch_sweep(benchmark, device_name):
    batch_sizes = (1, 16, 32, 64, 128) if full_run() else (1, 16, 32, 128)
    table = run_once(
        benchmark, run_figure11, model="inception_v3", batch_sizes=batch_sizes, device=device_name
    )
    first, last = table.rows[0], table.rows[-1]
    # Throughput grows with batch size, IOS stays on top, TASO OOMs at 128.
    assert last["ios"] > first["ios"]
    for row in table.rows:
        assert row["ios"] >= row["sequential"]
        assert row["ios"] >= row["tvm-cudnn"]
    assert table.row_by("batch_size", 128)["taso"] == 0.0
