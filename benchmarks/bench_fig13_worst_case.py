"""Benchmark: regenerate Figure 13 / Appendix A (worst-case complexity family)."""

from conftest import run_once

from repro.experiments import run_figure13


def test_figure13_worst_case_bound(benchmark):
    table = run_once(benchmark, run_figure13)
    for row in table.rows:
        assert abs(row["ratio"] - 1.0) < 1e-9
