"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works with older setuptools/pip combinations
that lack full PEP 660 editable-install support (e.g. offline environments
without the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of IOS: Inter-Operator Scheduler for CNN Acceleration (MLSys 2021)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
    entry_points={"console_scripts": ["ios-bench=repro.experiments.cli:main"]},
)
