"""Setuptools configuration.

The package version is single-sourced from ``src/repro/__init__.py``
(``__version__``); everything else is declared inline.  The file is kept
compatible with older setuptools/pip combinations that lack full PEP 660
editable-install support (e.g. offline environments without the ``wheel``
package).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Parse ``__version__`` out of src/repro/__init__.py without importing it."""
    init_text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r"^__version__\s*=\s*[\"']([^\"']+)[\"']", init_text, re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    description="Reproduction of IOS: Inter-Operator Scheduler for CNN Acceleration (MLSys 2021)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
    entry_points={
        "console_scripts": [
            "ios-bench=repro.experiments.cli:main",
            "repro-experiments=repro.experiments.cli:main",
        ]
    },
)
